//! Cone-scoped incremental static timing analysis.
//!
//! The KMS loop mutates a handful of gates per iteration (one duplicated
//! prefix, one constant cone), yet the seed implementation re-ran
//! [`Sta::run`] over the whole network every time. [`IncrementalSta`]
//! consumes the [`DirtySet`] the transforms in `kms-netlist` now emit and
//! recomputes arrival times only over the *fanout cone* of the dirty
//! gates and required times only over the *fanin cone* of the gates whose
//! fanout sets changed — each with a worklist in local topological order.
//! When the combined dirty region exceeds a fraction of the network it
//! falls back to a full rebuild (the bookkeeping would cost more than it
//! saves).
//!
//! # Bit-identity with `Sta::run`
//!
//! Arrival times use literally the same per-gate formula. Required times
//! are stored in a decomposed form: `required(g) = delay − down(g)` where
//! `down(g)` is the longest downstream distance from `g`'s output to any
//! primary output (gate delays + wire delays of the suffix; [`NEVER`]
//! when no output is reachable). The decomposition is exact by min/max
//! duality with `Sta`'s backward pass, and it makes `down` independent of
//! the global delay — a transform that shortens the critical path does
//! not dirty a single `down` entry. With the `debug-invariants` feature,
//! every update cross-checks all three quantities against a from-scratch
//! [`Sta::run`]; the property tests in `tests/` drive random transform
//! sequences through the same check in release builds.

use kms_netlist::{ConnRef, DirtySet, GateId, GateKind, Network, Pin};

#[cfg(any(test, feature = "debug-invariants"))]
use crate::sta::Sta;
use crate::sta::{InputArrivals, Time, TimingView, NEVER};

/// Counters describing how an [`IncrementalSta`] spent its updates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Updates resolved by cone-scoped recomputation.
    pub incremental_updates: u64,
    /// Updates that fell back to a full rebuild (dirty region over the
    /// threshold, or an output list reshape).
    pub full_recomputes: u64,
}

/// Incrementally maintained arrival/required times over a mutating
/// network.
///
/// Build once with [`IncrementalSta::new`], then after every transform
/// call [`IncrementalSta::update`] with the transform's [`DirtySet`]. The
/// accessors mirror [`Sta`] and the struct implements [`TimingView`], so
/// the path enumerators run against it unchanged.
#[derive(Clone, Debug)]
pub struct IncrementalSta {
    arrivals: InputArrivals,
    arrival: Vec<Time>,
    /// Longest downstream distance to any primary output; `NEVER` when
    /// unreachable. `required = delay − down`.
    down: Vec<Time>,
    delay: Time,
    /// Maintained fanout lists (conn order is arbitrary; only max-folds
    /// read them).
    fanouts: Vec<Vec<ConnRef>>,
    /// Shadow copy of each live gate's pins (empty for dead slots), used
    /// to diff a dirty gate's old connectivity against the new one.
    shadow_pins: Vec<Vec<Pin>>,
    /// Shadow copy of the output driver list.
    shadow_out: Vec<GateId>,
    /// How many primary outputs each gate drives.
    po_count: Vec<u32>,
    fallback_fraction: f64,
    stats: IncrementalStats,
}

impl IncrementalSta {
    /// Runs the initial full analysis of `net` under `arrivals` (the
    /// arrivals are captured; KMS never changes them mid-run).
    pub fn new(net: &Network, arrivals: InputArrivals) -> Self {
        let mut this = IncrementalSta {
            arrivals,
            arrival: Vec::new(),
            down: Vec::new(),
            delay: 0,
            fanouts: Vec::new(),
            shadow_pins: Vec::new(),
            shadow_out: Vec::new(),
            po_count: Vec::new(),
            fallback_fraction: 0.5,
            stats: IncrementalStats::default(),
        };
        this.full_rebuild(net);
        this
    }

    /// Sets the full-rebuild threshold: when the dirty region exceeds
    /// `fraction` of the gate slots, [`IncrementalSta::update`] rebuilds
    /// from scratch instead (default 0.5).
    pub fn with_fallback_fraction(mut self, fraction: f64) -> Self {
        self.fallback_fraction = fraction;
        self
    }

    /// The arrival time at the output of `id` (bit-identical to
    /// [`Sta::arrival`]).
    pub fn arrival(&self, id: GateId) -> Time {
        self.arrival[id.index()]
    }

    /// The required time at the output of `id` (bit-identical to
    /// [`Sta::required`]): `i64::MAX` if the gate reaches no output.
    pub fn required(&self, id: GateId) -> Time {
        match self.down[id.index()] {
            NEVER => i64::MAX,
            d => self.delay - d,
        }
    }

    /// Slack: required − arrival, as in [`Sta::slack`].
    pub fn slack(&self, id: GateId) -> Time {
        let (a, r) = (self.arrival(id), self.required(id));
        if a == NEVER || r == i64::MAX {
            i64::MAX
        } else {
            r - a
        }
    }

    /// The network's topological delay.
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// The input arrivals this analysis was built with.
    pub fn arrivals(&self) -> &InputArrivals {
        &self.arrivals
    }

    /// Update counters so far.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Re-analyzes after a transform described by `dirty` (the
    /// conservative over-approximation contract of [`DirtySet`]: every
    /// gate whose kind, pins, delay, or liveness changed is listed).
    ///
    /// With the `debug-invariants` feature the result is asserted
    /// bit-identical to a from-scratch [`Sta::run`] on every call.
    pub fn update(&mut self, net: &Network, dirty: &DirtySet) {
        self.update_inner(net, dirty);
        #[cfg(feature = "debug-invariants")]
        self.assert_matches(net);
    }

    fn update_inner(&mut self, net: &Network, dirty: &DirtySet) {
        let n = net.num_gate_slots();
        if net.outputs().len() != self.shadow_out.len() {
            // Output list reshaped — not a KMS transform; rebuild.
            self.stats.full_recomputes += 1;
            self.full_rebuild(net);
            return;
        }
        // Grow the per-slot tables for freshly appended gates.
        if n > self.arrival.len() {
            self.arrival.resize(n, NEVER);
            self.down.resize(n, NEVER);
            self.fanouts.resize_with(n, Vec::new);
            self.shadow_pins.resize_with(n, Vec::new);
            self.po_count.resize(n, 0);
        }

        let mut touched_mask = vec![false; n];
        let mut touched: Vec<GateId> = Vec::new();
        for g in dirty.touched() {
            if !touched_mask[g.index()] {
                touched_mask[g.index()] = true;
                touched.push(g);
            }
        }
        // Sync pins and fanout lists of every touched gate; seed the
        // backward (down) pass with every gate whose fanout set changed.
        // Delay-only changes keep the pin diff empty, so old and new
        // sources coincide — both are seeded regardless.
        let mut seeds: Vec<GateId> = Vec::new();
        for &t in &touched {
            let ti = t.index();
            let g = net.gate(t);
            let old_pins = std::mem::take(&mut self.shadow_pins[ti]);
            for p in &old_pins {
                self.fanouts[p.src.index()].retain(|c| c.gate != t);
                seeds.push(p.src);
            }
            if !g.is_dead() {
                for (pi, p) in g.pins.iter().enumerate() {
                    self.fanouts[p.src.index()].push(ConnRef::new(t, pi));
                    seeds.push(p.src);
                }
                self.shadow_pins[ti] = g.pins.clone();
            }
            seeds.push(t);
        }
        // Diff the output drivers (retargets flip `down`'s 0-contribution
        // on both the old and the new driver).
        for idx in 0..self.shadow_out.len() {
            let new_src = net.outputs()[idx].src;
            let old_src = self.shadow_out[idx];
            if new_src != old_src {
                self.po_count[old_src.index()] -= 1;
                self.po_count[new_src.index()] += 1;
                self.shadow_out[idx] = new_src;
                seeds.push(old_src);
                seeds.push(new_src);
            }
        }

        // Forward region: the fanout closure of the touched gates — a
        // superset of every gate whose arrival can have changed.
        let mut fmask = vec![false; n];
        let mut fregion: Vec<GateId> = Vec::new();
        let mut stack: Vec<GateId> = Vec::new();
        for &g in &touched {
            fmask[g.index()] = true;
            fregion.push(g);
            stack.push(g);
        }
        while let Some(g) = stack.pop() {
            for c in &self.fanouts[g.index()] {
                if !fmask[c.gate.index()] {
                    fmask[c.gate.index()] = true;
                    fregion.push(c.gate);
                    stack.push(c.gate);
                }
            }
        }
        // Backward region: the fanin closure of the seeds — a superset of
        // every gate whose `down` can have changed.
        let mut bmask = vec![false; n];
        let mut bregion: Vec<GateId> = Vec::new();
        for g in seeds {
            if !bmask[g.index()] {
                bmask[g.index()] = true;
                bregion.push(g);
                stack.push(g);
            }
        }
        while let Some(g) = stack.pop() {
            for p in &self.shadow_pins[g.index()] {
                if !bmask[p.src.index()] {
                    bmask[p.src.index()] = true;
                    bregion.push(p.src);
                    stack.push(p.src);
                }
            }
        }

        if (fregion.len() + bregion.len()) as f64 > self.fallback_fraction * n as f64 {
            self.stats.full_recomputes += 1;
            self.full_rebuild(net);
            return;
        }
        self.stats.incremental_updates += 1;

        // Arrival sweep over the forward region in local topological
        // order (Kahn over the in-region fanin edges).
        let mut indeg = vec![0u32; n];
        debug_assert!(stack.is_empty());
        for &g in &fregion {
            let d = self.shadow_pins[g.index()]
                .iter()
                .filter(|p| fmask[p.src.index()])
                .count() as u32;
            indeg[g.index()] = d;
            if d == 0 {
                stack.push(g);
            }
        }
        let mut processed = 0usize;
        while let Some(g) = stack.pop() {
            processed += 1;
            self.arrival[g.index()] = self.compute_arrival(net, g);
            for ci in 0..self.fanouts[g.index()].len() {
                let sink = self.fanouts[g.index()][ci].gate;
                if fmask[sink.index()] {
                    indeg[sink.index()] -= 1;
                    if indeg[sink.index()] == 0 {
                        stack.push(sink);
                    }
                }
            }
        }
        debug_assert_eq!(processed, fregion.len(), "forward region must be acyclic");

        // The delay is a global max over the outputs: O(|outputs|).
        self.delay = net
            .outputs()
            .iter()
            .map(|o| self.arrival[o.src.index()])
            .filter(|&a| a != NEVER)
            .max()
            .unwrap_or(0);

        // Down sweep over the backward region in reverse topological
        // order (Kahn over the in-region fanout edges).
        for &g in &bregion {
            let d = self.fanouts[g.index()]
                .iter()
                .filter(|c| bmask[c.gate.index()])
                .count() as u32;
            indeg[g.index()] = d;
            if d == 0 {
                stack.push(g);
            }
        }
        processed = 0;
        while let Some(g) = stack.pop() {
            processed += 1;
            self.down[g.index()] = self.compute_down(net, g);
            for pi in 0..self.shadow_pins[g.index()].len() {
                let src = self.shadow_pins[g.index()][pi].src;
                if bmask[src.index()] {
                    indeg[src.index()] -= 1;
                    if indeg[src.index()] == 0 {
                        stack.push(src);
                    }
                }
            }
        }
        debug_assert_eq!(processed, bregion.len(), "backward region must be acyclic");
    }

    /// `Sta::run`'s per-gate arrival formula, verbatim.
    fn compute_arrival(&self, net: &Network, id: GateId) -> Time {
        let g = net.gate(id);
        if g.is_dead() {
            return NEVER;
        }
        match g.kind {
            GateKind::Input => self.arrivals.get(id),
            GateKind::Const(_) => NEVER,
            _ => {
                let worst = g
                    .pins
                    .iter()
                    .map(|p| {
                        let a = self.arrival[p.src.index()];
                        if a == NEVER {
                            NEVER
                        } else {
                            a + p.wire_delay.units()
                        }
                    })
                    .max()
                    .unwrap_or(NEVER);
                if worst == NEVER {
                    NEVER
                } else {
                    worst + g.delay.units()
                }
            }
        }
    }

    /// Longest downstream distance from `id`'s output to any primary
    /// output: 0 if it drives one directly, else the max over its fanout
    /// connections of `down(sink) + d(sink) + wire`.
    fn compute_down(&self, net: &Network, id: GateId) -> Time {
        if net.gate(id).is_dead() {
            return NEVER;
        }
        let mut best = if self.po_count[id.index()] > 0 {
            0
        } else {
            NEVER
        };
        for c in &self.fanouts[id.index()] {
            let dsink = self.down[c.gate.index()];
            if dsink == NEVER {
                continue;
            }
            let sink = net.gate(c.gate);
            let v = dsink + sink.delay.units() + sink.pins[c.pin].wire_delay.units();
            best = best.max(v);
        }
        best
    }

    fn full_rebuild(&mut self, net: &Network) {
        let n = net.num_gate_slots();
        self.arrival = vec![NEVER; n];
        self.down = vec![NEVER; n];
        self.fanouts = net.fanouts();
        self.shadow_pins = (0..n)
            .map(|i| {
                let g = net.gate(GateId::from_index(i));
                if g.is_dead() {
                    Vec::new()
                } else {
                    g.pins.clone()
                }
            })
            .collect();
        self.shadow_out = net.outputs().iter().map(|o| o.src).collect();
        self.po_count = vec![0; n];
        for o in net.outputs() {
            self.po_count[o.src.index()] += 1;
        }
        let order = net.topo_order();
        for &id in &order {
            self.arrival[id.index()] = self.compute_arrival(net, id);
        }
        self.delay = net
            .outputs()
            .iter()
            .map(|o| self.arrival[o.src.index()])
            .filter(|&a| a != NEVER)
            .max()
            .unwrap_or(0);
        for &id in order.iter().rev() {
            self.down[id.index()] = self.compute_down(net, id);
        }
    }

    /// Asserts bit-identity of arrival, required, and delay against a
    /// from-scratch [`Sta::run`]. Compiled in tests and under the
    /// `debug-invariants` feature; the property tests call it explicitly.
    #[cfg(any(test, feature = "debug-invariants"))]
    pub fn assert_matches(&self, net: &Network) {
        let fresh = Sta::run(net, &self.arrivals);
        assert_eq!(self.delay, fresh.delay(), "incremental delay diverged");
        for i in 0..net.num_gate_slots() {
            let id = GateId::from_index(i);
            assert_eq!(
                self.arrival(id),
                fresh.arrival(id),
                "incremental arrival diverged at {id:?}"
            );
            assert_eq!(
                self.required(id),
                fresh.required(id),
                "incremental required diverged at {id:?}"
            );
        }
    }
}

impl TimingView for IncrementalSta {
    fn arrival(&self, id: GateId) -> Time {
        IncrementalSta::arrival(self, id)
    }

    fn delay(&self) -> Time {
        IncrementalSta::delay(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{transform, Delay, GateKind};

    fn fixture() -> (Network, GateId, GateId) {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::new(2));
        let g2 = net.add_gate(GateKind::And, &[g1, b], Delay::new(3));
        let g3 = net.add_gate(GateKind::Or, &[g2, a], Delay::new(1));
        net.add_output("y", g3);
        net.add_output("z", g2);
        (net, g2, g3)
    }

    #[test]
    fn matches_sta_at_rest() {
        let (net, _, _) = fixture();
        let arr = InputArrivals::zero();
        let inc = IncrementalSta::new(&net, arr.clone());
        inc.assert_matches(&net);
        let sta = Sta::run(&net, &arr);
        for id in net.gate_ids() {
            assert_eq!(inc.slack(id), sta.slack(id));
        }
    }

    #[test]
    fn tracks_const_propagation() {
        let (mut net, g2, _) = fixture();
        let mut inc = IncrementalSta::new(&net, InputArrivals::zero());
        let mut dirty = DirtySet::new();
        transform::set_conn_const_tracked(&mut net, ConnRef::new(g2, 1), false, &mut dirty);
        inc.update(&net, &dirty);
        inc.assert_matches(&net);
    }

    #[test]
    fn tracks_duplication() {
        let (mut net, _, _) = fixture();
        let mut inc = IncrementalSta::new(&net, InputArrivals::zero().with(net.inputs()[0], 4));
        let (paths, _) =
            crate::paths::longest_paths(&net, &InputArrivals::zero().with(net.inputs()[0], 4), 16);
        let dup = transform::duplicate_path_prefix(&mut net, &paths[0], 0);
        inc.update(&net, &dup.dirty);
        inc.assert_matches(&net);
    }

    #[test]
    fn fallback_threshold_forces_full_rebuild() {
        let (mut net, g2, _) = fixture();
        let mut inc = IncrementalSta::new(&net, InputArrivals::zero()).with_fallback_fraction(0.0);
        let mut dirty = DirtySet::new();
        transform::set_conn_const_tracked(&mut net, ConnRef::new(g2, 1), false, &mut dirty);
        inc.update(&net, &dirty);
        inc.assert_matches(&net);
        assert_eq!(inc.stats().full_recomputes, 1);
        assert_eq!(inc.stats().incremental_updates, 0);
    }
}
