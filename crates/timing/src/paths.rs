//! Best-first enumeration of IO-paths in non-increasing length order.
//!
//! The KMS loop repeatedly asks for "the longest paths" and, after a
//! transformation, for the next-longest (Fig. 3). The enumerator grows
//! partial path suffixes backward from the primary outputs; the admissible
//! bound `arrival(open end) + suffix length` is exact (arrival times are
//! tight maxima), so paths pop in exactly non-increasing length order.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use kms_netlist::{ConnRef, DirtySet, GateId, GateKind, Network, Path};

use crate::sta::{InputArrivals, Sta, Time, TimingView, NEVER};

/// A partial path suffix: connections stored in reverse (last conn first);
/// `open` is the gate driving the earliest chosen connection.
#[derive(Clone, Debug)]
struct Partial {
    rev_conns: Vec<ConnRef>,
    open: GateId,
    bound: Time,
    extra: Time,
    po: usize,
}

impl Partial {
    /// The deterministic tie-break key: the suffix identity, independent
    /// of bounds. An ancestor's key is a lexicographic prefix of every
    /// leaf in its subtree, which is what makes the emission order a pure
    /// function of the remaining *path set* rather than of the frontier
    /// shape — the property the resumable enumerator's repair relies on.
    fn key(&self) -> (usize, &[ConnRef]) {
        (self.po, &self.rev_conns)
    }
}

impl PartialEq for Partial {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.key() == other.key()
    }
}
impl Eq for Partial {}
impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: longer bound pops first; among equal bounds the
        // lexicographically smallest (po, suffix) pops first.
        self.bound
            .cmp(&other.bound)
            .then_with(|| other.key().cmp(&self.key()))
    }
}

/// The seed partial for primary output `po` (empty suffix, open at the
/// driver), or `None` when the output is driven by a source gate or never
/// sees an event.
fn seed_partial(net: &Network, view: &impl TimingView, po: usize) -> Option<Partial> {
    let d = net.outputs()[po].src;
    if net.gate(d).kind.is_source() {
        return None; // a PO wired straight to a PI/constant has no path
    }
    let bound = view.arrival(d);
    if bound == NEVER {
        return None;
    }
    Some(Partial {
        rev_conns: Vec::new(),
        open: d,
        bound,
        extra: 0,
        po,
    })
}

/// Extends `p` backward through each pin of its open gate, pushing the
/// children onto `heap`. Shared by the one-shot and resumable enumerators
/// so their bounds are computed by the same code.
fn expand_partial(
    net: &Network,
    view: &impl TimingView,
    floor: Option<Time>,
    p: &Partial,
    heap: &mut BinaryHeap<Partial>,
) {
    let gate_delay = net.gate(p.open).delay.units();
    for (pin_idx, pin) in net.gate(p.open).pins.iter().enumerate() {
        let src_kind = net.gate(pin.src).kind;
        if matches!(src_kind, GateKind::Const(_)) {
            continue;
        }
        let arr = view.arrival(pin.src);
        if arr == NEVER {
            continue;
        }
        let extra = p.extra + gate_delay + pin.wire_delay.units();
        let bound = arr + extra;
        if let Some(floor) = floor {
            if bound < floor {
                continue;
            }
        }
        let mut rev = p.rev_conns.clone();
        rev.push(ConnRef::new(p.open, pin_idx));
        heap.push(Partial {
            rev_conns: rev,
            open: pin.src,
            bound,
            extra,
            po: p.po,
        });
    }
}

/// Iterator over all IO-paths of a network, longest first.
///
/// Yields `(path, length)` pairs where `length` includes the path source's
/// input-arrival offset. Paths through constants are skipped (constants
/// never produce events).
///
/// ```
/// use kms_netlist::{Network, GateKind, Delay};
/// use kms_timing::{PathEnumerator, InputArrivals};
///
/// let mut net = Network::new("t");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let g1 = net.add_gate(GateKind::Not, &[a], Delay::new(2));
/// let g2 = net.add_gate(GateKind::And, &[g1, b], Delay::new(1));
/// net.add_output("y", g2);
///
/// let lengths: Vec<i64> = PathEnumerator::new(&net, &InputArrivals::zero())
///     .map(|(_, len)| len)
///     .collect();
/// assert_eq!(lengths, vec![3, 1]); // a→g1→g2 then b→g2
/// ```
pub struct PathEnumerator<'a> {
    net: &'a Network,
    sta: Sta,
    heap: BinaryHeap<Partial>,
    floor: Option<Time>,
    max_pops: usize,
    pops: usize,
}

impl<'a> PathEnumerator<'a> {
    /// Starts an enumeration over `net` with the given input arrivals.
    pub fn new(net: &'a Network, arrivals: &InputArrivals) -> Self {
        let sta = Sta::run(net, arrivals);
        let mut heap = BinaryHeap::new();
        for po in 0..net.outputs().len() {
            if let Some(seed) = seed_partial(net, &sta, po) {
                heap.push(seed);
            }
        }
        PathEnumerator {
            net,
            sta,
            heap,
            floor: None,
            max_pops: usize::MAX,
            pops: 0,
        }
    }

    /// Discards all paths shorter than `floor` (pruning the search).
    pub fn with_floor(mut self, floor: Time) -> Self {
        self.floor = Some(floor);
        self
    }

    /// Caps the total search effort; the iterator ends after this many
    /// queue pops even if paths remain.
    pub fn with_effort_cap(mut self, max_pops: usize) -> Self {
        self.max_pops = max_pops;
        self
    }

    /// The STA pass backing this enumeration.
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// `true` if the effort cap stopped the enumeration early.
    pub fn truncated(&self) -> bool {
        self.pops >= self.max_pops && !self.heap.is_empty()
    }
}

impl Iterator for PathEnumerator<'_> {
    type Item = (Path, Time);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(p) = {
            if self.pops >= self.max_pops {
                return None;
            }
            self.heap.pop()
        } {
            self.pops += 1;
            if let Some(floor) = self.floor {
                if p.bound < floor {
                    return None; // everything left is shorter
                }
            }
            let kind = self.net.gate(p.open).kind;
            if kind == GateKind::Input {
                let mut conns = p.rev_conns.clone();
                conns.reverse();
                debug_assert!(!conns.is_empty());
                return Some((Path::new(conns, p.po), p.bound));
            }
            // Extend backward through each pin of the open gate.
            expand_partial(self.net, &self.sta, self.floor, &p, &mut self.heap);
        }
        None
    }
}

/// Counters for one [`ResumablePathEnumerator::repair`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Partials whose suffix avoided the dirty region: kept with their
    /// exact bound (recomputed from the open end's fresh arrival).
    pub retained: u64,
    /// Partials invalidated by the transform (suffix through a dirty or
    /// dead gate, stale output driver, unreachable open end).
    pub dropped: u64,
    /// Fresh partials pushed to re-cover the subtrees the dropped
    /// partials abandoned.
    pub reseeded: u64,
}

impl RepairStats {
    /// Accumulates another pass's counters.
    pub fn absorb(&mut self, other: RepairStats) {
        self.retained += other.retained;
        self.dropped += other.dropped;
        self.reseeded += other.reseeded;
    }
}

/// A prefix tree over retained partial suffixes, used by the repair walk
/// to re-cover exactly the dropped subtrees without double-covering the
/// retained ones. Edges are connections (in suffix order, PO end first);
/// a terminal holds the retained partial whose suffix ends at that node.
#[derive(Default)]
struct SuffixTrie {
    children: HashMap<ConnRef, SuffixTrie>,
    terminal: Option<Partial>,
}

impl SuffixTrie {
    fn insert(&mut self, conns: &[ConnRef], p: Partial) {
        match conns.split_first() {
            None => {
                debug_assert!(self.terminal.is_none(), "frontier must be an antichain");
                self.terminal = Some(p);
            }
            Some((c, rest)) => self.children.entry(*c).or_default().insert(rest, p),
        }
    }
}

/// A best-first path enumerator that survives network transforms: after a
/// mutation, [`ResumablePathEnumerator::repair`] patches the frontier in
/// place instead of restarting the search, so the next "longest paths"
/// query costs O(dirty region), not O(network).
///
/// The enumerator holds no borrow of the network — every call takes the
/// current `&Network` and a [`TimingView`] — which is what lets the KMS
/// loop mutate the network between queries. The emission order is
/// identical to a fresh [`PathEnumerator`] over the same network: among
/// equal-length paths the deterministic suffix order decides, and that
/// order is a function of the remaining path set only (see
/// [`Partial::key`]), not of how the frontier was built.
///
/// Already-emitted paths are remembered and re-inserted by `repair`: each
/// KMS iteration re-enumerates the full equal-longest set of the *new*
/// network, which may include paths untouched by the transform.
pub struct ResumablePathEnumerator {
    heap: BinaryHeap<Partial>,
    emitted: Vec<Partial>,
    max_pops: usize,
    pops: usize,
}

impl ResumablePathEnumerator {
    /// Seeds the enumeration over the current network state.
    pub fn new(net: &Network, view: &impl TimingView) -> Self {
        let mut heap = BinaryHeap::new();
        for po in 0..net.outputs().len() {
            if let Some(seed) = seed_partial(net, view, po) {
                heap.push(seed);
            }
        }
        ResumablePathEnumerator {
            heap,
            emitted: Vec::new(),
            max_pops: usize::MAX,
            pops: 0,
        }
    }

    /// Caps the queue pops per enumeration round (between
    /// [`ResumablePathEnumerator::reset_effort`] calls).
    pub fn with_effort_cap(mut self, max_pops: usize) -> Self {
        self.max_pops = max_pops;
        self
    }

    /// Starts a new enumeration round: the effort counter resets, the cap
    /// stays.
    pub fn reset_effort(&mut self) {
        self.pops = 0;
    }

    /// `true` if the effort cap stopped the current round early.
    pub fn truncated(&self) -> bool {
        self.pops >= self.max_pops && !self.heap.is_empty()
    }

    /// The next path, longest first. `net` and `view` must describe the
    /// state the enumerator was seeded or last repaired against.
    pub fn next_path(&mut self, net: &Network, view: &impl TimingView) -> Option<(Path, Time)> {
        while self.pops < self.max_pops {
            let p = self.heap.pop()?;
            self.pops += 1;
            if net.gate(p.open).kind == GateKind::Input {
                let mut conns = p.rev_conns.clone();
                conns.reverse();
                debug_assert!(!conns.is_empty());
                let item = (Path::new(conns, p.po), p.bound);
                self.emitted.push(p);
                return Some(item);
            }
            expand_partial(net, view, None, &p, &mut self.heap);
        }
        None
    }

    /// Repairs the frontier after a transform described by `dirty` (the
    /// [`DirtySet`] contract: every structurally changed gate is listed).
    /// `net` and `view` are the *post-transform* state; `view` must
    /// already be updated.
    ///
    /// Partials whose suffix avoids the dirty gates keep their exact
    /// suffix length (`extra`) and get their bound refreshed from the
    /// open end's new arrival; the rest are dropped and their subtrees
    /// re-covered by fresh partials. Emitted paths re-enter the frontier
    /// so the next round re-enumerates the full path set of the new
    /// network.
    pub fn repair(
        &mut self,
        net: &Network,
        view: &impl TimingView,
        dirty: &DirtySet,
    ) -> RepairStats {
        let n = net.num_gate_slots();
        let mut dirty_mask = vec![false; n];
        for g in dirty.touched() {
            if g.index() < n {
                dirty_mask[g.index()] = true;
            }
        }
        let mut candidates: Vec<Partial> = self.heap.drain().collect();
        candidates.append(&mut self.emitted);
        let mut stats = RepairStats::default();
        let mut tries: HashMap<usize, SuffixTrie> = HashMap::new();
        'cand: for mut p in candidates {
            if p.po >= net.outputs().len() {
                stats.dropped += 1;
                continue;
            }
            let driver = net.outputs()[p.po].src;
            // Validate the suffix chain against the new network. Gates on
            // the suffix must be clean (their pins, delays, and liveness
            // are unchanged, so `extra` is still exact); the open end may
            // be dirty — its pins are re-read on expansion.
            if p.rev_conns.is_empty() {
                if p.open != driver || net.gate(driver).kind.is_source() {
                    stats.dropped += 1;
                    continue;
                }
            } else if p.rev_conns[0].gate != driver {
                stats.dropped += 1;
                continue;
            }
            for (w, &c) in p.rev_conns.iter().enumerate() {
                let g = net.gate(c.gate);
                if g.is_dead() || dirty_mask[c.gate.index()] || c.pin >= g.pins.len() {
                    stats.dropped += 1;
                    continue 'cand;
                }
                let expect = p.rev_conns.get(w + 1).map_or(p.open, |next| next.gate);
                if g.pins[c.pin].src != expect {
                    stats.dropped += 1;
                    continue 'cand;
                }
            }
            if net.gate(p.open).is_dead() {
                stats.dropped += 1;
                continue;
            }
            let arr = view.arrival(p.open);
            if arr == NEVER {
                stats.dropped += 1;
                continue;
            }
            p.bound = arr + p.extra;
            let po = p.po;
            let conns = std::mem::take(&mut p.rev_conns);
            let mut q = p;
            q.rev_conns = conns.clone();
            tries.entry(po).or_default().insert(&conns, q);
            stats.retained += 1;
        }
        for po in 0..net.outputs().len() {
            match tries.remove(&po) {
                None => {
                    // Nothing retained for this output: reseed it whole.
                    if let Some(seed) = seed_partial(net, view, po) {
                        self.heap.push(seed);
                        stats.reseeded += 1;
                    }
                }
                Some(trie) => {
                    let driver = net.outputs()[po].src;
                    let mut rev = Vec::new();
                    self.walk_cover(net, view, trie, driver, &mut rev, 0, po, &mut stats);
                }
            }
        }
        stats
    }

    /// Depth-first re-cover: descends into retained suffixes (pushing the
    /// retained partial at each terminal) and pushes one fresh partial at
    /// every branch the trie does not cover. Together with the retained
    /// set this is an exact cover of the remaining path set — no leaf is
    /// covered twice (the frontier is an antichain) and none is lost.
    #[allow(clippy::too_many_arguments)]
    fn walk_cover(
        &mut self,
        net: &Network,
        view: &impl TimingView,
        mut node: SuffixTrie,
        open: GateId,
        rev: &mut Vec<ConnRef>,
        extra: Time,
        po: usize,
        stats: &mut RepairStats,
    ) {
        if let Some(p) = node.terminal.take() {
            debug_assert!(node.children.is_empty(), "frontier must be an antichain");
            self.heap.push(p);
            return;
        }
        let gate_delay = net.gate(open).delay.units();
        let fanin = net.gate(open).pins.len();
        for pin_idx in 0..fanin {
            let conn = ConnRef::new(open, pin_idx);
            let pin = net.gate(open).pins[pin_idx];
            let extra2 = extra + gate_delay + pin.wire_delay.units();
            if let Some(child) = node.children.remove(&conn) {
                rev.push(conn);
                self.walk_cover(net, view, child, pin.src, rev, extra2, po, stats);
                rev.pop();
            } else {
                if matches!(net.gate(pin.src).kind, GateKind::Const(_)) {
                    continue;
                }
                let arr = view.arrival(pin.src);
                if arr == NEVER {
                    continue;
                }
                let mut rc = rev.clone();
                rc.push(conn);
                self.heap.push(Partial {
                    rev_conns: rc,
                    open: pin.src,
                    bound: arr + extra2,
                    extra: extra2,
                    po,
                });
                stats.reseeded += 1;
            }
        }
        debug_assert!(
            node.children.is_empty(),
            "every retained suffix edge must match a live pin"
        );
    }
}

/// All IO-paths whose length equals the topological delay, up to `cap`
/// paths. Returns the paths and the delay.
pub fn longest_paths(net: &Network, arrivals: &InputArrivals, cap: usize) -> (Vec<Path>, Time) {
    let mut it = PathEnumerator::new(net, arrivals);
    let delay = it.sta().delay();
    let mut out = Vec::new();
    for (path, len) in it.by_ref() {
        if len < delay || out.len() >= cap {
            break;
        }
        out.push(path);
    }
    (out, delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{Delay, GateKind, Network};

    /// Two-output diamond with reconvergence.
    fn diamond() -> Network {
        let mut net = Network::new("d");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::new(1));
        let g2 = net.add_gate(GateKind::Not, &[a], Delay::new(2));
        let g3 = net.add_gate(GateKind::And, &[g1, g2, b], Delay::new(1));
        net.add_output("y", g3);
        net
    }

    #[test]
    fn non_increasing_lengths() {
        let net = diamond();
        let lengths: Vec<Time> = PathEnumerator::new(&net, &InputArrivals::zero())
            .map(|(_, l)| l)
            .collect();
        assert_eq!(lengths, vec![3, 2, 1]);
    }

    #[test]
    fn emitted_lengths_match_path_lengths() {
        let net = diamond();
        for (path, len) in PathEnumerator::new(&net, &InputArrivals::zero()) {
            assert!(path.validate(&net));
            assert_eq!(path.length(&net).units(), len);
        }
    }

    #[test]
    fn longest_paths_extraction() {
        let net = diamond();
        let (paths, delay) = longest_paths(&net, &InputArrivals::zero(), 16);
        assert_eq!(delay, 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2); // a -> g2 -> g3
    }

    #[test]
    fn arrival_offsets_reorder_paths() {
        let net = diamond();
        let b = net.input_by_name("b").unwrap();
        let arr = InputArrivals::zero().with(b, 10);
        let (paths, delay) = longest_paths(&net, &arr, 16);
        assert_eq!(delay, 11);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].source(&net), b);
    }

    #[test]
    fn parallel_equal_paths_all_enumerated() {
        // Two distinct connections from the same gate pair: both paths
        // must appear (Definition 4.2's reason for connection-paths).
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::new(1));
        let g2 = net.add_gate(GateKind::And, &[g1, g1], Delay::new(1));
        net.add_output("y", g2);
        let (paths, delay) = longest_paths(&net, &InputArrivals::zero(), 16);
        assert_eq!(delay, 2);
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0], paths[1]);
    }

    #[test]
    fn floor_prunes() {
        let net = diamond();
        let lengths: Vec<Time> = PathEnumerator::new(&net, &InputArrivals::zero())
            .with_floor(2)
            .map(|(_, l)| l)
            .collect();
        assert_eq!(lengths, vec![3, 2]);
    }

    #[test]
    fn effort_cap_truncates() {
        let net = diamond();
        let mut it = PathEnumerator::new(&net, &InputArrivals::zero()).with_effort_cap(1);
        let _ = it.by_ref().count();
        assert!(it.truncated());
    }

    #[test]
    fn constant_paths_skipped() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let c = net.add_const(true);
        let g = net.add_gate(GateKind::And, &[a, c], Delay::new(1));
        net.add_output("y", g);
        let paths: Vec<_> = PathEnumerator::new(&net, &InputArrivals::zero()).collect();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].1, 1);
    }

    #[test]
    fn output_driven_by_input_has_no_paths() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        net.add_output("y", a);
        let paths: Vec<_> = PathEnumerator::new(&net, &InputArrivals::zero()).collect();
        assert!(paths.is_empty());
    }
}
