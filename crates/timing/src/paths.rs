//! Best-first enumeration of IO-paths in non-increasing length order.
//!
//! The KMS loop repeatedly asks for "the longest paths" and, after a
//! transformation, for the next-longest (Fig. 3). The enumerator grows
//! partial path suffixes backward from the primary outputs; the admissible
//! bound `arrival(open end) + suffix length` is exact (arrival times are
//! tight maxima), so paths pop in exactly non-increasing length order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use kms_netlist::{ConnRef, GateId, GateKind, Network, Path};

use crate::sta::{InputArrivals, Sta, Time, NEVER};

/// A partial path suffix: connections stored in reverse (last conn first);
/// `open` is the gate driving the earliest chosen connection.
#[derive(Clone, Debug)]
struct Partial {
    rev_conns: Vec<ConnRef>,
    open: GateId,
    bound: Time,
    extra: Time,
    po: usize,
}

impl PartialEq for Partial {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Partial {}
impl PartialOrd for Partial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Partial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound.cmp(&other.bound)
    }
}

/// Iterator over all IO-paths of a network, longest first.
///
/// Yields `(path, length)` pairs where `length` includes the path source's
/// input-arrival offset. Paths through constants are skipped (constants
/// never produce events).
///
/// ```
/// use kms_netlist::{Network, GateKind, Delay};
/// use kms_timing::{PathEnumerator, InputArrivals};
///
/// let mut net = Network::new("t");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let g1 = net.add_gate(GateKind::Not, &[a], Delay::new(2));
/// let g2 = net.add_gate(GateKind::And, &[g1, b], Delay::new(1));
/// net.add_output("y", g2);
///
/// let lengths: Vec<i64> = PathEnumerator::new(&net, &InputArrivals::zero())
///     .map(|(_, len)| len)
///     .collect();
/// assert_eq!(lengths, vec![3, 1]); // a→g1→g2 then b→g2
/// ```
pub struct PathEnumerator<'a> {
    net: &'a Network,
    sta: Sta,
    heap: BinaryHeap<Partial>,
    floor: Option<Time>,
    max_pops: usize,
    pops: usize,
}

impl<'a> PathEnumerator<'a> {
    /// Starts an enumeration over `net` with the given input arrivals.
    pub fn new(net: &'a Network, arrivals: &InputArrivals) -> Self {
        let sta = Sta::run(net, arrivals);
        let mut heap = BinaryHeap::new();
        for (po, o) in net.outputs().iter().enumerate() {
            let d = o.src;
            let kind = net.gate(d).kind;
            if kind.is_source() {
                continue; // a PO wired straight to a PI/constant has no path
            }
            let bound = sta.arrival(d);
            if bound == NEVER {
                continue;
            }
            heap.push(Partial {
                rev_conns: Vec::new(),
                open: d,
                bound,
                extra: 0,
                po,
            });
        }
        PathEnumerator {
            net,
            sta,
            heap,
            floor: None,
            max_pops: usize::MAX,
            pops: 0,
        }
    }

    /// Discards all paths shorter than `floor` (pruning the search).
    pub fn with_floor(mut self, floor: Time) -> Self {
        self.floor = Some(floor);
        self
    }

    /// Caps the total search effort; the iterator ends after this many
    /// queue pops even if paths remain.
    pub fn with_effort_cap(mut self, max_pops: usize) -> Self {
        self.max_pops = max_pops;
        self
    }

    /// The STA pass backing this enumeration.
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// `true` if the effort cap stopped the enumeration early.
    pub fn truncated(&self) -> bool {
        self.pops >= self.max_pops && !self.heap.is_empty()
    }
}

impl Iterator for PathEnumerator<'_> {
    type Item = (Path, Time);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(p) = {
            if self.pops >= self.max_pops {
                return None;
            }
            self.heap.pop()
        } {
            self.pops += 1;
            if let Some(floor) = self.floor {
                if p.bound < floor {
                    return None; // everything left is shorter
                }
            }
            let kind = self.net.gate(p.open).kind;
            if kind == GateKind::Input {
                let mut conns = p.rev_conns.clone();
                conns.reverse();
                debug_assert!(!conns.is_empty());
                return Some((Path::new(conns, p.po), p.bound));
            }
            // Extend backward through each pin of the open gate.
            let gate_delay = self.net.gate(p.open).delay.units();
            for (pin_idx, pin) in self.net.gate(p.open).pins.iter().enumerate() {
                let src_kind = self.net.gate(pin.src).kind;
                if matches!(src_kind, GateKind::Const(_)) {
                    continue;
                }
                let arr = self.sta.arrival(pin.src);
                if arr == NEVER {
                    continue;
                }
                let extra = p.extra + gate_delay + pin.wire_delay.units();
                let bound = arr + extra;
                if let Some(floor) = self.floor {
                    if bound < floor {
                        continue;
                    }
                }
                let mut rev = p.rev_conns.clone();
                rev.push(ConnRef::new(p.open, pin_idx));
                self.heap.push(Partial {
                    rev_conns: rev,
                    open: pin.src,
                    bound,
                    extra,
                    po: p.po,
                });
            }
        }
        None
    }
}

/// All IO-paths whose length equals the topological delay, up to `cap`
/// paths. Returns the paths and the delay.
pub fn longest_paths(net: &Network, arrivals: &InputArrivals, cap: usize) -> (Vec<Path>, Time) {
    let mut it = PathEnumerator::new(net, arrivals);
    let delay = it.sta().delay();
    let mut out = Vec::new();
    for (path, len) in it.by_ref() {
        if len < delay || out.len() >= cap {
            break;
        }
        out.push(path);
    }
    (out, delay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{Delay, GateKind, Network};

    /// Two-output diamond with reconvergence.
    fn diamond() -> Network {
        let mut net = Network::new("d");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::new(1));
        let g2 = net.add_gate(GateKind::Not, &[a], Delay::new(2));
        let g3 = net.add_gate(GateKind::And, &[g1, g2, b], Delay::new(1));
        net.add_output("y", g3);
        net
    }

    #[test]
    fn non_increasing_lengths() {
        let net = diamond();
        let lengths: Vec<Time> = PathEnumerator::new(&net, &InputArrivals::zero())
            .map(|(_, l)| l)
            .collect();
        assert_eq!(lengths, vec![3, 2, 1]);
    }

    #[test]
    fn emitted_lengths_match_path_lengths() {
        let net = diamond();
        for (path, len) in PathEnumerator::new(&net, &InputArrivals::zero()) {
            assert!(path.validate(&net));
            assert_eq!(path.length(&net).units(), len);
        }
    }

    #[test]
    fn longest_paths_extraction() {
        let net = diamond();
        let (paths, delay) = longest_paths(&net, &InputArrivals::zero(), 16);
        assert_eq!(delay, 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2); // a -> g2 -> g3
    }

    #[test]
    fn arrival_offsets_reorder_paths() {
        let net = diamond();
        let b = net.input_by_name("b").unwrap();
        let arr = InputArrivals::zero().with(b, 10);
        let (paths, delay) = longest_paths(&net, &arr, 16);
        assert_eq!(delay, 11);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].source(&net), b);
    }

    #[test]
    fn parallel_equal_paths_all_enumerated() {
        // Two distinct connections from the same gate pair: both paths
        // must appear (Definition 4.2's reason for connection-paths).
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::new(1));
        let g2 = net.add_gate(GateKind::And, &[g1, g1], Delay::new(1));
        net.add_output("y", g2);
        let (paths, delay) = longest_paths(&net, &InputArrivals::zero(), 16);
        assert_eq!(delay, 2);
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0], paths[1]);
    }

    #[test]
    fn floor_prunes() {
        let net = diamond();
        let lengths: Vec<Time> = PathEnumerator::new(&net, &InputArrivals::zero())
            .with_floor(2)
            .map(|(_, l)| l)
            .collect();
        assert_eq!(lengths, vec![3, 2]);
    }

    #[test]
    fn effort_cap_truncates() {
        let net = diamond();
        let mut it = PathEnumerator::new(&net, &InputArrivals::zero()).with_effort_cap(1);
        let _ = it.by_ref().count();
        assert!(it.truncated());
    }

    #[test]
    fn constant_paths_skipped() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let c = net.add_const(true);
        let g = net.add_gate(GateKind::And, &[a, c], Delay::new(1));
        net.add_output("y", g);
        let paths: Vec<_> = PathEnumerator::new(&net, &InputArrivals::zero()).collect();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].1, 1);
    }

    #[test]
    fn output_driven_by_input_has_no_paths() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        net.add_output("y", a);
        let paths: Vec<_> = PathEnumerator::new(&net, &InputArrivals::zero()).collect();
        assert!(paths.is_empty());
    }
}
