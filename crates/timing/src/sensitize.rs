//! Static sensitization of paths (Definition 4.11).
//!
//! A path is statically sensitizable if some input cube sets every
//! side-input to a noncontrolling value. Two oracles are provided: a
//! SAT-based decision procedure returning a witness cube, and a BDD-based
//! one returning the full characteristic function of sensitizing cubes.
//!
//! Side-input handling per gate kind: AND/OR/NAND/NOR side-inputs must take
//! the kind's noncontrolling value; NOT/BUF have no side-inputs; XOR/XNOR
//! side-inputs are unconstrained (every value propagates an event, possibly
//! inverted — all values are noncontrolling in the Definition 4.9 sense).
//! MUX gates must be decomposed first ([`kms_netlist::transform::decompose_to_simple`]).

use kms_bdd::{Bdd, BddManager, NodeFunctions};
use kms_netlist::{GateKind, NetlistError, Network, Path};
use kms_proof::{core_conclusion, Certificate, CertificationReport};
use kms_sat::{Lit, NetworkCnf, SatResult, Solver, Stats};

/// The noncontrolling-value constraints of a path: for each constrained
/// side-input connection, the connection itself, its driving gate, and the
/// required (noncontrolling) value.
fn side_constraints(
    net: &Network,
    path: &Path,
) -> Result<Vec<(kms_netlist::ConnRef, kms_netlist::GateId, bool)>, NetlistError> {
    let mut out = Vec::new();
    for (_, conn) in path.side_inputs(net) {
        let kind = net.gate(conn.gate).kind;
        match kind {
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
                let nc = kind
                    .noncontrolling_value()
                    .expect("and/or/nand/nor have noncontrolling values");
                out.push((conn, net.pin(conn).src, nc));
            }
            GateKind::Xor | GateKind::Xnor => {} // every value propagates
            GateKind::Not | GateKind::Buf => {
                unreachable!("single-input gates have no side-inputs")
            }
            GateKind::Mux => {
                return Err(NetlistError::NotSimple {
                    gate: conn.gate,
                    kind,
                })
            }
            GateKind::Input | GateKind::Const(_) => {
                unreachable!("sources have no pins")
            }
        }
    }
    Ok(out)
}

/// The static-sensitization constraint set of a path as `(driving gate,
/// required value)` pairs: the path is statically sensitizable iff some
/// input cube makes every listed gate output its required (noncontrolling)
/// value. This is the cacheable abstraction of [`sensitization_cube`] —
/// two paths with the same constraint set (up to gate-function identity)
/// have the same verdict.
///
/// # Errors
///
/// Returns [`NetlistError::NotSimple`] if a MUX gate appears as a fanout
/// of the path.
pub fn static_side_constraints(
    net: &Network,
    path: &Path,
) -> Result<Vec<(kms_netlist::GateId, bool)>, NetlistError> {
    Ok(side_constraints(net, path)?
        .into_iter()
        .map(|(_, src, nc)| (src, nc))
        .collect())
}

/// SAT-based static sensitization check. Returns a sensitizing input
/// vector (in input order) if one exists, `None` if the path is not
/// statically sensitizable.
///
/// # Errors
///
/// Returns [`NetlistError::NotSimple`] if a MUX gate appears as a fanout of
/// the path (decompose the network first).
///
/// # Panics
///
/// Panics if the path does not validate against `net`.
pub fn sensitization_cube(net: &Network, path: &Path) -> Result<Option<Vec<bool>>, NetlistError> {
    assert!(path.validate(net), "path does not validate");
    let constraints = side_constraints(net, path)?;
    let mut solver = Solver::new();
    let cnf = NetworkCnf::encode(net, &mut solver);
    let assumptions: Vec<Lit> = constraints
        .iter()
        .map(|&(_, src, nc)| cnf.lit(src, nc))
        .collect();
    Ok(match solver.solve_with(&assumptions) {
        SatResult::Sat => Some(cnf.model_inputs(&solver, net)),
        SatResult::Unsat => None,
        SatResult::Aborted(r) => unreachable!("unbudgeted solve aborted: {r}"),
    })
}

/// `true` if the path is statically sensitizable (SAT-backed).
///
/// # Errors
///
/// See [`sensitization_cube`].
pub fn is_statically_sensitizable(net: &Network, path: &Path) -> Result<bool, NetlistError> {
    Ok(sensitization_cube(net, path)?.is_some())
}

/// A reusable static-sensitization oracle for a fixed network: the CNF
/// encoding and learnt clauses are shared across path queries, which is
/// the inner loop of the KMS algorithm (every longest path gets checked
/// each iteration).
pub struct SensitizationOracle {
    solver: Solver,
    cnf: NetworkCnf,
    num_inputs: usize,
}

impl SensitizationOracle {
    /// Encodes `net` once. The oracle answers queries for paths of this
    /// network only; rebuild after any structural change.
    pub fn new(net: &Network) -> Self {
        Self::build(net, false)
    }

    /// As [`SensitizationOracle::new`], with proof logging enabled so
    /// that unsensitizable verdicts can be certified through
    /// [`SensitizationOracle::is_sensitizable_certified`].
    pub fn with_certification(net: &Network) -> Self {
        Self::build(net, true)
    }

    fn build(net: &Network, certify: bool) -> Self {
        let mut solver = Solver::new();
        if certify {
            solver.enable_proof();
        }
        let cnf = NetworkCnf::encode(net, &mut solver);
        SensitizationOracle {
            solver,
            cnf,
            num_inputs: net.inputs().len(),
        }
    }

    /// The underlying solver's search counters.
    pub fn solver_stats(&self) -> Stats {
        self.solver.stats()
    }

    /// As [`sensitization_cube`], but reusing the shared encoding.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotSimple`] for MUX fanouts.
    pub fn sensitization_cube(
        &mut self,
        net: &Network,
        path: &Path,
    ) -> Result<Option<Vec<bool>>, NetlistError> {
        let constraints = side_constraints(net, path)?;
        let assumptions: Vec<Lit> = constraints
            .iter()
            .map(|&(_, src, nc)| self.cnf.lit(src, nc))
            .collect();
        Ok(match self.solver.solve_with(&assumptions) {
            SatResult::Sat => Some(
                (0..self.num_inputs)
                    .map(|i| {
                        self.cnf
                            .model_value(&self.solver, net.inputs()[i])
                            .unwrap_or(false)
                    })
                    .collect(),
            ),
            SatResult::Unsat => None,
            SatResult::Aborted(r) => unreachable!("unbudgeted solve aborted: {r}"),
        })
    }

    /// `true` if the path is statically sensitizable.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotSimple`] for MUX fanouts.
    pub fn is_sensitizable(&mut self, net: &Network, path: &Path) -> Result<bool, NetlistError> {
        Ok(self.sensitization_cube(net, path)?.is_some())
    }

    /// As [`SensitizationOracle::is_sensitizable`], but an unsensitizable
    /// verdict comes with a checked proof: the solver's refutation of the
    /// noncontrolling-value assumptions is re-derived by the independent
    /// `kms-proof` checker and recorded in `report`, and the certificate
    /// digest is returned alongside the verdict. Requires the oracle to
    /// have been built with [`SensitizationOracle::with_certification`]
    /// (panics otherwise). Sensitizable verdicts carry no certificate —
    /// the witness cube is checkable by simulation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotSimple`] for MUX fanouts.
    pub fn is_sensitizable_certified(
        &mut self,
        net: &Network,
        path: &Path,
        report: &mut CertificationReport,
    ) -> Result<(bool, Option<u64>), NetlistError> {
        let constraints = side_constraints(net, path)?;
        let assumptions: Vec<Lit> = constraints
            .iter()
            .map(|&(_, src, nc)| self.cnf.lit(src, nc))
            .collect();
        Ok(match self.solver.solve_with(&assumptions) {
            SatResult::Sat => (true, None),
            SatResult::Unsat => {
                let conclusion = core_conclusion(self.solver.unsat_core());
                let cert = Certificate::from_solver(&self.solver, &assumptions, &conclusion)
                    .expect("oracle built with certification enabled");
                let digest = kms_proof::certify(report, &format!("sens {path}"), &cert);
                (false, digest)
            }
            SatResult::Aborted(r) => unreachable!("unbudgeted solve aborted: {r}"),
        })
    }

    /// Explains *why* a path is false: for an unsensitizable path, returns
    /// the side-input connections whose noncontrolling-value demands are
    /// jointly unsatisfiable (an unsat core over the sensitization
    /// assumptions — usually the two or three reconvergent side-inputs
    /// that fight over a shared signal). Returns `None` if the path is
    /// statically sensitizable.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotSimple`] for MUX fanouts.
    pub fn explain_conflict(
        &mut self,
        net: &Network,
        path: &Path,
    ) -> Result<Option<Vec<kms_netlist::ConnRef>>, NetlistError> {
        let constraints = side_constraints(net, path)?;
        let assumptions: Vec<Lit> = constraints
            .iter()
            .map(|&(_, src, nc)| self.cnf.lit(src, nc))
            .collect();
        match self.solver.solve_with(&assumptions) {
            SatResult::Sat => Ok(None),
            SatResult::Unsat => {
                let core: Vec<Lit> = self.solver.unsat_core().to_vec();
                let conns = constraints
                    .iter()
                    .zip(&assumptions)
                    .filter(|(_, a)| core.contains(a))
                    .map(|(&(conn, _, _), _)| conn)
                    .collect();
                Ok(Some(conns))
            }
            SatResult::Aborted(r) => unreachable!("unbudgeted solve aborted: {r}"),
        }
    }
}

/// BDD-based characteristic function of all sensitizing input cubes: the
/// conjunction over side-inputs of "side-input function equals its
/// noncontrolling value". The path is statically sensitizable iff the
/// result is not constant false.
///
/// # Errors
///
/// Returns [`NetlistError::NotSimple`] for MUX fanouts, as above.
pub fn sensitization_function(
    net: &Network,
    path: &Path,
    manager: &mut BddManager,
    funcs: &NodeFunctions,
) -> Result<Bdd, NetlistError> {
    let constraints = side_constraints(net, path)?;
    let mut acc = Bdd::TRUE;
    for (_, src, nc) in constraints {
        let f = funcs.of(src);
        let lit = if nc { f } else { manager.not(f) };
        acc = manager.and(acc, lit);
        if acc.is_false() {
            break;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{ConnRef, Delay, GateKind, Network, Path};

    /// The textbook false-path fixture: y = a·s + ā·s̄-flavoured
    /// reconvergence where the long path needs s and s̄ at once.
    ///
    /// s ── not ── n ──┐
    /// s ──────────────┼─ g1(and: s, a) ──┐
    /// a ──────────────┘                  ├─ g3(or) ── y
    /// b ── g2(and: n, b) ────────────────┘
    fn reconvergent() -> (Network, Path, Path) {
        let mut net = Network::new("r");
        let s = net.add_input("s");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let n = net.add_gate(GateKind::Not, &[s], Delay::new(1));
        let g1 = net.add_gate(GateKind::And, &[s, a], Delay::new(1));
        let g2 = net.add_gate(GateKind::And, &[n, b], Delay::new(1));
        let g3 = net.add_gate(GateKind::Or, &[g1, g2], Delay::new(1));
        net.add_output("y", g3);
        // Sensitizable path: s -> g1 -> g3 needs a=1 (side of g1) and
        // g2=0 (side of g3): satisfiable.
        let p_ok = Path::new(vec![ConnRef::new(g1, 0), ConnRef::new(g3, 0)], 0);
        // Both AND gates' outputs cannot be noncontrolled… build a false
        // path: s -> n -> g2 -> g3 requires b=1 (side of g2) and g1=0
        // (side of g3): satisfiable with s=0. For a genuinely false path
        // we need a conflict; see `false_path` below.
        let p2 = Path::new(
            vec![ConnRef::new(n, 0), ConnRef::new(g2, 0), ConnRef::new(g3, 1)],
            0,
        );
        (net, p_ok, p2)
    }

    #[test]
    fn sensitizable_paths_get_witnesses() {
        let (net, p1, p2) = reconvergent();
        for p in [&p1, &p2] {
            let cube = sensitization_cube(&net, p).unwrap().expect("sensitizable");
            // Verify the witness: all constrained side inputs noncontrolling.
            for (_, conn) in p.side_inputs(&net) {
                let kind = net.gate(conn.gate).kind;
                if let Some(nc) = kind.noncontrolling_value() {
                    let vals = net.node_words(
                        &cube
                            .iter()
                            .map(|&b| if b { !0 } else { 0 })
                            .collect::<Vec<_>>(),
                    );
                    let got = vals[net.pin(conn).src.index()] & 1 != 0;
                    assert_eq!(got, nc, "side input at {conn} must be noncontrolling");
                }
            }
        }
    }

    /// A genuinely false path: y = (s AND a) OR (NOT s AND a); the path
    /// through the first AND requires the second AND's output to be 0
    /// while s=…; we build the classic "needs x and x̄" conflict.
    #[test]
    fn false_path_detected() {
        let mut net = Network::new("fp");
        let s = net.add_input("s");
        let a = net.add_input("a");
        let n = net.add_gate(GateKind::Not, &[s], Delay::new(1));
        // g = a AND s AND (NOT s): statically unsensitizable through `a`.
        let g = net.add_gate(GateKind::And, &[a, s, n], Delay::new(1));
        net.add_output("y", g);
        let p = Path::new(vec![ConnRef::new(g, 0)], 0);
        // Side inputs s and NOT s must both be 1: impossible.
        assert!(!is_statically_sensitizable(&net, &p).unwrap());
        assert_eq!(sensitization_cube(&net, &p).unwrap(), None);
    }

    #[test]
    fn oracle_matches_one_shot_queries() {
        let (net, p1, p2) = reconvergent();
        let mut oracle = SensitizationOracle::new(&net);
        for p in [&p1, &p2] {
            let one_shot = sensitization_cube(&net, p).unwrap();
            let cached = oracle.sensitization_cube(&net, p).unwrap();
            assert_eq!(one_shot.is_some(), cached.is_some());
            assert_eq!(oracle.is_sensitizable(&net, p).unwrap(), one_shot.is_some());
            if let Some(cube) = cached {
                assert_eq!(cube.len(), net.inputs().len());
            }
        }
        // Repeated queries on the same oracle stay consistent (learnt
        // clauses must not change verdicts).
        for _ in 0..3 {
            assert!(oracle.is_sensitizable(&net, &p1).unwrap());
        }
    }

    #[test]
    fn bdd_and_sat_agree() {
        let (net, p1, p2) = reconvergent();
        let mut m = BddManager::new(net.inputs().len());
        let funcs = NodeFunctions::build(&net, &mut m);
        for p in [&p1, &p2] {
            let f = sensitization_function(&net, p, &mut m, &funcs).unwrap();
            let sat = is_statically_sensitizable(&net, p).unwrap();
            assert_eq!(!f.is_false(), sat);
        }
    }

    #[test]
    fn xor_side_inputs_unconstrained() {
        let mut net = Network::new("x");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::Xor, &[a, b], Delay::new(2));
        net.add_output("y", g);
        let p = Path::new(vec![ConnRef::new(g, 0)], 0);
        // XOR always propagates: trivially sensitizable.
        assert!(is_statically_sensitizable(&net, &p).unwrap());
        let mut m = BddManager::new(2);
        let funcs = NodeFunctions::build(&net, &mut m);
        let f = sensitization_function(&net, &p, &mut m, &funcs).unwrap();
        assert!(f.is_true());
    }

    #[test]
    fn mux_requires_decomposition() {
        let mut net = Network::new("m");
        let s = net.add_input("s");
        let d0 = net.add_input("d0");
        let d1 = net.add_input("d1");
        let g = net.add_gate(GateKind::Mux, &[s, d0, d1], Delay::new(2));
        net.add_output("y", g);
        let p = Path::new(vec![ConnRef::new(g, 1)], 0);
        assert!(matches!(
            sensitization_cube(&net, &p),
            Err(NetlistError::NotSimple { .. })
        ));
    }

    #[test]
    fn constant_controlling_side_input_blocks() {
        let mut net = Network::new("c");
        let a = net.add_input("a");
        let c0 = net.add_const(false);
        let g = net.add_gate(GateKind::And, &[a, c0], Delay::new(1));
        net.add_output("y", g);
        let p = Path::new(vec![ConnRef::new(g, 0)], 0);
        assert!(!is_statically_sensitizable(&net, &p).unwrap());
    }
}
