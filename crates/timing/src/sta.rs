//! Static timing analysis: arrival times, required times, and slack.
//!
//! Arrival times support per-input offsets — Section III of the paper
//! analyzes the carry-skip block with "the primary input c0 arriving at
//! time t = 5 gate delays and all other primary inputs at t = 0".
//! Constants never produce events and are excluded from arrival maxima.

use std::collections::HashMap;

use kms_netlist::{Delay, GateId, GateKind, Network};

/// A signed time instant (arrival offsets are nonnegative in practice, but
/// required-time arithmetic can go negative).
pub type Time = i64;

/// Sentinel for "no event ever arrives here" (constants, dead cones).
pub const NEVER: Time = i64::MIN;

/// Per-primary-input arrival offsets.
#[derive(Clone, Debug, Default)]
pub struct InputArrivals {
    by_gate: HashMap<GateId, Time>,
}

impl InputArrivals {
    /// All inputs arrive at t = 0.
    pub fn zero() -> Self {
        InputArrivals::default()
    }

    /// Sets the arrival time of `input`.
    pub fn set(&mut self, input: GateId, t: Time) -> &mut Self {
        self.by_gate.insert(input, t);
        self
    }

    /// Builder-style variant of [`InputArrivals::set`].
    pub fn with(mut self, input: GateId, t: Time) -> Self {
        self.set(input, t);
        self
    }

    /// The arrival time of `input` (default 0).
    pub fn get(&self, input: GateId) -> Time {
        self.by_gate.get(&input).copied().unwrap_or(0)
    }
}

/// Read-only access to an arrival-time analysis, implemented by both the
/// from-scratch [`Sta`] pass and the incremental engine
/// ([`crate::IncrementalSta`]). The path enumerator and the viability
/// lateness rules are generic over this trait, so the same (proven) code
/// runs against either backend.
pub trait TimingView {
    /// The arrival time at the output of `id` ([`NEVER`] for constants and
    /// cones driven only by constants).
    fn arrival(&self, id: GateId) -> Time;

    /// The network's topological delay (longest-path length including
    /// input arrival offsets).
    fn delay(&self) -> Time;
}

impl TimingView for Sta {
    fn arrival(&self, id: GateId) -> Time {
        Sta::arrival(self, id)
    }

    fn delay(&self) -> Time {
        Sta::delay(self)
    }
}

/// The result of a static timing analysis pass over a network.
#[derive(Clone, Debug)]
pub struct Sta {
    arrival: Vec<Time>,
    required: Vec<Time>,
    delay: Time,
}

impl Sta {
    /// Runs arrival/required analysis on `net` with the given input
    /// arrival offsets.
    ///
    /// The network delay is the maximum arrival over the primary outputs —
    /// the length of the topologically longest path (what a "static timing
    /// verifier" reports, Section II). Required times are computed against
    /// that delay; slack 0 marks the longest paths.
    ///
    /// # Panics
    ///
    /// Panics if the network contains a cycle.
    pub fn run(net: &Network, arrivals: &InputArrivals) -> Sta {
        let n = net.num_gate_slots();
        let mut arrival = vec![NEVER; n];
        let order = net.topo_order();
        for &id in &order {
            let g = net.gate(id);
            arrival[id.index()] = match g.kind {
                GateKind::Input => arrivals.get(id),
                GateKind::Const(_) => NEVER,
                _ => {
                    let worst = g
                        .pins
                        .iter()
                        .map(|p| {
                            let a = arrival[p.src.index()];
                            if a == NEVER {
                                NEVER
                            } else {
                                a + p.wire_delay.units()
                            }
                        })
                        .max()
                        .unwrap_or(NEVER);
                    if worst == NEVER {
                        NEVER
                    } else {
                        worst + g.delay.units()
                    }
                }
            };
        }
        let delay = net
            .outputs()
            .iter()
            .map(|o| arrival[o.src.index()])
            .filter(|&a| a != NEVER)
            .max()
            .unwrap_or(0);
        // Required times: latest time a signal may settle without pushing
        // any output past `delay`.
        let mut required = vec![i64::MAX; n];
        for o in net.outputs() {
            let r = &mut required[o.src.index()];
            *r = (*r).min(delay);
        }
        for &id in order.iter().rev() {
            let g = net.gate(id);
            if g.kind.is_source() {
                continue;
            }
            let r = required[id.index()];
            if r == i64::MAX {
                continue;
            }
            for p in &g.pins {
                let rr = r - g.delay.units() - p.wire_delay.units();
                let slot = &mut required[p.src.index()];
                *slot = (*slot).min(rr);
            }
        }
        Sta {
            arrival,
            required,
            delay,
        }
    }

    /// The arrival time at the output of `id` ([`NEVER`] for constants and
    /// cones driven only by constants).
    pub fn arrival(&self, id: GateId) -> Time {
        self.arrival[id.index()]
    }

    /// The required time at the output of `id` (`i64::MAX` if the gate
    /// reaches no output).
    pub fn required(&self, id: GateId) -> Time {
        self.required[id.index()]
    }

    /// Slack: required − arrival. Zero on the topologically longest paths.
    pub fn slack(&self, id: GateId) -> Time {
        let (a, r) = (self.arrival(id), self.required(id));
        if a == NEVER || r == i64::MAX {
            i64::MAX
        } else {
            r - a
        }
    }

    /// The network's topological delay (longest-path length including input
    /// arrival offsets).
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// The gates with zero slack, i.e. on some topologically longest path.
    pub fn critical_gates(&self, net: &Network) -> Vec<GateId> {
        net.gate_ids().filter(|&id| self.slack(id) == 0).collect()
    }
}

/// Convenience: the topological delay of `net` with zero input arrivals.
pub fn topological_delay(net: &Network) -> Delay {
    let sta = Sta::run(net, &InputArrivals::zero());
    Delay::new(sta.delay().max(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{Delay, GateKind, Network};

    fn chain() -> (Network, Vec<GateId>) {
        // a -> g1(d=2) -> g2(d=3) -> y ; b joins at g2.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::new(2));
        let g2 = net.add_gate(GateKind::And, &[g1, b], Delay::new(3));
        net.add_output("y", g2);
        (net, vec![a, b, g1, g2])
    }

    #[test]
    fn arrivals_accumulate() {
        let (net, ids) = chain();
        let sta = Sta::run(&net, &InputArrivals::zero());
        assert_eq!(sta.arrival(ids[2]), 2);
        assert_eq!(sta.arrival(ids[3]), 5);
        assert_eq!(sta.delay(), 5);
    }

    #[test]
    fn input_offsets_shift_paths() {
        let (net, ids) = chain();
        // b arrives late at t = 10: now b's path dominates.
        let arr = InputArrivals::zero().with(ids[1], 10);
        let sta = Sta::run(&net, &arr);
        assert_eq!(sta.delay(), 13);
        assert_eq!(sta.slack(ids[1]), 0);
        assert_eq!(sta.slack(ids[2]), 13 - 5);
    }

    #[test]
    fn required_and_slack() {
        let (net, ids) = chain();
        let sta = Sta::run(&net, &InputArrivals::zero());
        // Critical path a->g1->g2: zero slack everywhere on it.
        assert_eq!(sta.slack(ids[0]), 0);
        assert_eq!(sta.slack(ids[2]), 0);
        assert_eq!(sta.slack(ids[3]), 0);
        // b may arrive as late as t = 2.
        assert_eq!(sta.slack(ids[1]), 2);
        let crit = sta.critical_gates(&net);
        assert!(crit.contains(&ids[2]));
        assert!(!crit.contains(&ids[1]));
    }

    #[test]
    fn constants_never_event() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let c = net.add_const(true);
        let g = net.add_gate(GateKind::And, &[a, c], Delay::new(4));
        net.add_output("y", g);
        let sta = Sta::run(&net, &InputArrivals::zero());
        assert_eq!(sta.arrival(c), NEVER);
        assert_eq!(sta.delay(), 4);
        // A gate fed only by constants never events.
        let mut net2 = Network::new("t2");
        net2.add_input("a");
        let c = net2.add_const(true);
        let g = net2.add_gate(GateKind::Not, &[c], Delay::new(4));
        net2.add_output("y", g);
        let sta2 = Sta::run(&net2, &InputArrivals::zero());
        assert_eq!(sta2.arrival(g), NEVER);
        assert_eq!(sta2.delay(), 0);
    }

    #[test]
    fn wire_delays_count() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g = net.add_gate_pins(
            GateKind::Not,
            vec![kms_netlist::Pin::with_delay(a, Delay::new(7))],
            Delay::new(1),
        );
        net.add_output("y", g);
        assert_eq!(topological_delay(&net), Delay::new(8));
    }
}
