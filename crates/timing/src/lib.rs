//! Timing analysis for the KMS reproduction: static timing, path
//! enumeration, static sensitization, and viability analysis.
//!
//! Section V of the paper defines the *computed delay* — a tight, provably
//! safe upper bound on the true circuit delay — as the length of the
//! longest **viable** path (after McGeer–Brayton). This crate implements
//! the whole ladder of delay models the paper discusses:
//!
//! | Model | API | Character |
//! |---|---|---|
//! | topological longest path | [`Sta`], [`PathCondition::Topological`] | safe, possibly very pessimistic (false paths) |
//! | longest statically sensitizable path | [`sensitization_cube`], [`PathCondition::StaticSensitization`] | may be optimistic (Section II) |
//! | longest viable path | [`ViabilityAnalysis`], [`PathCondition::Viability`] | the paper's model |
//!
//! Per-input arrival offsets (`c0 @ t = 5` of Section III) are supported
//! via [`InputArrivals`].
//!
//! # Example
//!
//! ```
//! use kms_netlist::{Network, GateKind, Delay};
//! use kms_timing::{computed_delay, InputArrivals, PathCondition};
//!
//! let mut net = Network::new("t");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let g = net.add_gate(GateKind::And, &[a, b], Delay::new(1));
//! net.add_output("y", g);
//! let r = computed_delay(&net, &InputArrivals::zero(),
//!                        PathCondition::Viability, 10_000)?;
//! assert_eq!(r.delay, 1);
//! # Ok::<(), kms_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod incremental;
mod paths;
mod report;
mod sensitize;
mod sta;
mod viability;

pub use analysis::{computed_delay, computed_delay_with_rule, DelayReport, PathCondition};
pub use incremental::{IncrementalSta, IncrementalStats};
pub use paths::{longest_paths, PathEnumerator, RepairStats, ResumablePathEnumerator};
pub use report::{critical_paths, CriticalPathReport, PathVerdict};
pub use sensitize::{
    is_statically_sensitizable, sensitization_cube, sensitization_function,
    static_side_constraints, SensitizationOracle,
};
pub use sta::{topological_delay, InputArrivals, Sta, Time, TimingView, NEVER};
pub use viability::{early_side_constraints, LatenessRule, ViabilityAnalysis};
