//! Property-based and mutation validation of the proof checker.
//!
//! Three angles:
//!
//! 1. **Completeness** — every certificate the instrumented solver emits
//!    for an UNSAT verdict (closed or under assumptions) is accepted.
//! 2. **Soundness** — corrupting the *axioms* can make the claim false
//!    (the weakened formula becomes satisfiable); brute force decides
//!    the ground truth, and whenever the claim is false the checker must
//!    reject. This is the checker's actual guarantee: no false claim is
//!    ever certified, whatever the stream says.
//! 3. **Mutation rejection** — streams mutated in ways that provably
//!    break the derivation (dropping a load-bearing step, flipping a
//!    literal of a needed lemma, reordering a deletion before its add)
//!    are rejected. The fixture puts a pigeonhole instance behind an
//!    activation guard so unit propagation alone cannot bridge dropped
//!    lemmas (PHP is UP-hard), making the expected rejections stable.

use proptest::prelude::*;

use kms_proof::{check, core_conclusion, digest, Certificate, CheckError};
use kms_sat::{Lit, ProofStep, SatResult, Solver, Var};

fn lit(v: usize, pos: bool) -> Lit {
    Var::from_index(v).lit(pos)
}

/// A random clause set over `nvars` variables.
fn formula(nvars: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..nvars, any::<bool>()), 1..4),
        1..30,
    )
}

fn brute_force_sat(nvars: usize, clauses: &[Vec<Lit>], assumptions: &[Lit]) -> bool {
    'outer: for m in 0..(1u64 << nvars) {
        let holds = |l: &Lit| ((m >> l.var().index()) & 1 == 1) == l.is_positive();
        if !assumptions.iter().all(holds) {
            continue;
        }
        for c in clauses {
            if !c.iter().any(holds) {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

/// Loads a formula into a proof-logging solver.
fn load(nvars: usize, clauses: &[Vec<Lit>]) -> (Solver, bool) {
    let mut s = Solver::new();
    s.enable_proof();
    for _ in 0..nvars {
        s.new_var();
    }
    let mut ok = true;
    for c in clauses {
        if !s.add_clause(c) {
            ok = false;
            break;
        }
    }
    (s, ok)
}

fn to_lits(clauses: &[Vec<(usize, bool)>]) -> Vec<Vec<Lit>> {
    clauses
        .iter()
        .map(|c| c.iter().map(|&(v, pos)| lit(v, pos)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unsat_verdicts_are_certified(clauses in formula(8)) {
        let clauses = to_lits(&clauses);
        let (mut s, mut ok) = load(8, &clauses);
        if ok {
            ok = s.solve() == SatResult::Sat;
        }
        if !ok {
            let conclusion = core_conclusion(s.unsat_core());
            let cert = Certificate::from_solver(&s, &[], &conclusion).unwrap();
            let stats = check(&cert);
            prop_assert!(stats.is_ok(), "valid closed proof rejected: {stats:?}");
            prop_assert!(digest(&cert) != 0);
        }
    }

    #[test]
    fn assumption_verdicts_are_certified(
        clauses in formula(7),
        picks in proptest::collection::vec((0usize..7, any::<bool>()), 1..4),
    ) {
        let clauses = to_lits(&clauses);
        let assumptions: Vec<Lit> = picks.iter().map(|&(v, pos)| lit(v, pos)).collect();
        let (mut s, ok) = load(7, &clauses);
        if ok && s.solve_with(&assumptions) == SatResult::Unsat {
            let conclusion = core_conclusion(s.unsat_core());
            let cert = Certificate::from_solver(&s, &assumptions, &conclusion).unwrap();
            let stats = check(&cert);
            prop_assert!(stats.is_ok(), "valid assumption proof rejected: {stats:?}");
        }
    }

    /// Soundness: weaken the axioms after the fact. If the doctored
    /// formula is satisfiable under the assumptions, the claim the
    /// certificate makes is false and the checker must reject it.
    #[test]
    fn false_claims_are_rejected(
        clauses in formula(6),
        picks in proptest::collection::vec((0usize..6, any::<bool>()), 0..3),
        at_idx in 0usize..64,
    ) {
        let clauses = to_lits(&clauses);
        let assumptions: Vec<Lit> = picks.iter().map(|&(v, pos)| lit(v, pos)).collect();
        let (mut s, ok) = load(6, &clauses);
        let unsat = !ok || s.solve_with(&assumptions) == SatResult::Unsat;
        if !unsat {
            return Ok(());
        }
        let conclusion = core_conclusion(s.unsat_core());
        let proof = s.proof().unwrap();
        // Corrupt one axiom: flip its first literal.
        let mut axioms = proof.axioms().to_vec();
        if axioms.is_empty() {
            return Ok(());
        }
        let k = at_idx % axioms.len();
        if axioms[k].is_empty() {
            return Ok(());
        }
        axioms[k][0] = !axioms[k][0];
        let cert = Certificate {
            num_vars: s.num_vars(),
            axioms: &axioms,
            steps: proof.steps(),
            assumptions: &assumptions,
            conclusion: &conclusion,
        };
        let claim_false = brute_force_sat(6, &axioms, &assumptions);
        if claim_false {
            prop_assert!(
                check(&cert).is_err(),
                "checker certified a false claim (axiom {k} flipped)"
            );
        }
    }
}

/// Pigeonhole clauses PHP(pigeons, holes) over vars `p*holes + h`, each
/// clause extended with `¬guard` where `guard` is the last variable.
fn guarded_pigeonhole(pigeons: usize, holes: usize) -> (usize, Vec<Vec<Lit>>, Lit) {
    let var = |p: usize, h: usize| lit(p * holes + h, true);
    let guard = lit(pigeons * holes, true);
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        let mut c: Vec<Lit> = (0..holes).map(|h| var(p, h)).collect();
        c.push(!guard);
        clauses.push(c);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![!var(p1, h), !var(p2, h), !guard]);
            }
        }
    }
    (pigeons * holes + 1, clauses, guard)
}

/// A solved guarded-PHP instance: formula SAT, UNSAT under the guard
/// assumption, with a learnt-clause chain that unit propagation alone
/// cannot replace (PHP needs genuine case splits).
fn php_certificate_fixture() -> (Solver, Vec<Lit>, Vec<Lit>) {
    let (nvars, clauses, guard) = guarded_pigeonhole(4, 3);
    let mut s = Solver::new();
    s.enable_proof();
    for _ in 0..nvars {
        s.new_var();
    }
    for c in &clauses {
        assert!(s.add_clause(c));
    }
    let assumptions = vec![guard];
    assert_eq!(s.solve_with(&assumptions), SatResult::Unsat);
    let conclusion = core_conclusion(s.unsat_core());
    (s, assumptions, conclusion)
}

#[test]
fn php_fixture_is_certified() {
    let (s, assumptions, conclusion) = php_certificate_fixture();
    let cert = Certificate::from_solver(&s, &assumptions, &conclusion).unwrap();
    let stats = check(&cert).expect("valid proof accepted");
    assert!(
        stats.steps_checked > 1,
        "the learnt chain must be exercised"
    );
}

#[test]
fn dropping_all_lemmas_is_rejected() {
    let (s, assumptions, conclusion) = php_certificate_fixture();
    let proof = s.proof().unwrap();
    // Keep deletions only; every learnt lemma disappears. The conclusion
    // cannot be re-derived by propagation over the axioms (PHP is
    // UP-hard), so the check must fail.
    let steps: Vec<ProofStep> = proof
        .steps()
        .iter()
        .filter(|st| matches!(st, ProofStep::Delete(_)))
        .cloned()
        .collect();
    let cert = Certificate {
        num_vars: s.num_vars(),
        axioms: proof.axioms(),
        steps: &steps,
        assumptions: &assumptions,
        conclusion: &conclusion,
    };
    assert!(check(&cert).is_err(), "gutted proof must be rejected");
}

#[test]
fn dropping_a_load_bearing_step_is_rejected() {
    let (s, assumptions, conclusion) = php_certificate_fixture();
    let proof = s.proof().unwrap();
    // Some single dropped add must break the chain (the solver's final
    // lemmas feed the conclusion directly).
    let mut any_rejected = false;
    for drop in 0..proof.steps().len() {
        if !matches!(proof.steps()[drop], ProofStep::Add(_)) {
            continue;
        }
        let steps: Vec<ProofStep> = proof
            .steps()
            .iter()
            .enumerate()
            .filter(|&(i, st)| {
                // Dropping an add can orphan a later deletion of the
                // same clause; drop that deletion too so the mutation
                // tests derivational validity, not bookkeeping.
                i != drop
                    && !(matches!(st, ProofStep::Delete(d)
                    if matches!(&proof.steps()[drop], ProofStep::Add(a) if {
                        let mut a2 = a.clone();
                        let mut d2 = d.clone();
                        a2.sort_unstable();
                        d2.sort_unstable();
                        a2 == d2
                    })))
            })
            .map(|(_, st)| st.clone())
            .collect();
        let cert = Certificate {
            num_vars: s.num_vars(),
            axioms: proof.axioms(),
            steps: &steps,
            assumptions: &assumptions,
            conclusion: &conclusion,
        };
        if check(&cert).is_err() {
            any_rejected = true;
            break;
        }
    }
    assert!(
        any_rejected,
        "no single-step drop was detected — the chain is not being checked"
    );
}

#[test]
fn flipping_a_lemma_literal_is_detected() {
    let (s, assumptions, conclusion) = php_certificate_fixture();
    let proof = s.proof().unwrap();
    // Flip one literal in each lemma in turn; at least one flip must be
    // rejected (a flipped load-bearing lemma is not a RUP consequence,
    // and PHP propagation cannot patch around it).
    let mut any_rejected = false;
    for idx in 0..proof.steps().len() {
        let ProofStep::Add(c) = &proof.steps()[idx] else {
            continue;
        };
        if c.is_empty() {
            continue;
        }
        let mut steps = proof.steps().to_vec();
        let mut flipped = c.clone();
        flipped[0] = !flipped[0];
        steps[idx] = ProofStep::Add(flipped);
        let cert = Certificate {
            num_vars: s.num_vars(),
            axioms: proof.axioms(),
            steps: &steps,
            assumptions: &assumptions,
            conclusion: &conclusion,
        };
        if check(&cert).is_err() {
            any_rejected = true;
            break;
        }
    }
    assert!(any_rejected, "no literal flip was detected");
}

#[test]
fn reordering_a_deletion_before_its_add_is_rejected() {
    // Synthetic stream where the deletion bookkeeping is unambiguous.
    let a = lit(0, true);
    let b = lit(1, true);
    let axioms = vec![vec![a, b], vec![a, !b], vec![!a, b], vec![!a, !b]];
    let good = vec![
        ProofStep::Add(vec![a]),
        ProofStep::Delete(vec![a]),
        ProofStep::Add(vec![a]),
        ProofStep::Add(vec![]),
    ];
    let cert = |steps: &[ProofStep]| -> Result<_, CheckError> {
        check(&Certificate {
            num_vars: 2,
            axioms: &axioms,
            steps,
            assumptions: &[],
            conclusion: &[],
        })
    };
    assert!(cert(&good).is_ok(), "baseline stream must be valid");
    // Deletion moved before any add of [a]: nothing to delete.
    let reordered = vec![
        ProofStep::Delete(vec![a]),
        ProofStep::Add(vec![a]),
        ProofStep::Add(vec![a]),
        ProofStep::Add(vec![]),
    ];
    assert_eq!(cert(&reordered), Err(CheckError::UnknownDelete { step: 0 }));
    // Double deletion: the second one has no live clause to match.
    let doubled = vec![
        ProofStep::Add(vec![a]),
        ProofStep::Delete(vec![a]),
        ProofStep::Delete(vec![a]),
        ProofStep::Add(vec![a]),
        ProofStep::Add(vec![]),
    ];
    assert_eq!(cert(&doubled), Err(CheckError::UnknownDelete { step: 2 }));
}

#[test]
fn conclusion_must_discharge_the_assumptions() {
    let (s, assumptions, _) = php_certificate_fixture();
    let proof = s.proof().unwrap();
    let bogus = vec![lit(0, true)]; // not the negation of any assumption
    let cert = Certificate {
        num_vars: s.num_vars(),
        axioms: proof.axioms(),
        steps: proof.steps(),
        assumptions: &assumptions,
        conclusion: &bogus,
    };
    assert_eq!(
        check(&cert),
        Err(CheckError::ConclusionNotFromCore { lit: lit(0, true) })
    );
}

#[test]
fn digests_are_stable_and_sensitive() {
    let (s, assumptions, conclusion) = php_certificate_fixture();
    let cert = Certificate::from_solver(&s, &assumptions, &conclusion).unwrap();
    let d1 = digest(&cert);
    let d2 = digest(&cert);
    assert_eq!(d1, d2);
    let other = Certificate {
        conclusion: &[],
        ..cert
    };
    assert_ne!(d1, digest(&other));
}

#[test]
fn minimized_proofs_are_certified_and_fail_closed() {
    // Large enough that recursive conflict-clause minimization provably
    // fires; the logged lemmas are the *minimized* clauses, and the
    // certificate must still check.
    let (nvars, clauses, guard) = guarded_pigeonhole(6, 5);
    let mut s = Solver::new();
    s.enable_proof();
    for _ in 0..nvars {
        s.new_var();
    }
    for c in &clauses {
        assert!(s.add_clause(c));
    }
    let assumptions = [guard];
    assert_eq!(s.solve_with(&assumptions), SatResult::Unsat);
    assert!(
        s.stats().minimized_lits > 0,
        "fixture must exercise the minimizer: {:?}",
        s.stats()
    );
    let conclusion = core_conclusion(s.unsat_core());
    let cert = Certificate::from_solver(&s, &assumptions, &conclusion).unwrap();
    check(&cert).expect("proof built from minimized lemmas accepted");

    // Fail-closed: corrupting a logged (minimized) lemma by dropping one
    // more literal over-strengthens it. At least one such mutation must
    // be rejected — either the stronger clause is no RUP consequence, or
    // the stream's bookkeeping (a later deletion of the original) no
    // longer lines up.
    let proof = s.proof().unwrap();
    let mut any_rejected = false;
    for idx in 0..proof.steps().len() {
        let ProofStep::Add(c) = &proof.steps()[idx] else {
            continue;
        };
        if c.len() < 2 {
            continue;
        }
        let mut steps = proof.steps().to_vec();
        let mut cut = c.clone();
        cut.pop();
        steps[idx] = ProofStep::Add(cut);
        let mutated = Certificate {
            num_vars: s.num_vars(),
            axioms: proof.axioms(),
            steps: &steps,
            assumptions: &assumptions,
            conclusion: &conclusion,
        };
        if check(&mutated).is_err() {
            any_rejected = true;
            break;
        }
    }
    assert!(
        any_rejected,
        "no over-strengthened lemma was rejected — minimized clauses are not being RUP-checked"
    );
}

#[test]
fn database_reductions_round_trip() {
    // A large enough pigeonhole run triggers learnt-database reduction,
    // exercising Delete steps end to end through the solver.
    let (nvars, clauses, guard) = guarded_pigeonhole(7, 6);
    let mut s = Solver::new();
    s.enable_proof();
    for _ in 0..nvars {
        s.new_var();
    }
    for c in &clauses {
        assert!(s.add_clause(c));
    }
    let assumptions = [guard];
    assert_eq!(s.solve_with(&assumptions), SatResult::Unsat);
    let conclusion = core_conclusion(s.unsat_core());
    let cert = Certificate::from_solver(&s, &assumptions, &conclusion).unwrap();
    let stats = check(&cert).expect("proof with deletions accepted");
    let deletes = s
        .proof()
        .unwrap()
        .steps()
        .iter()
        .filter(|st| matches!(st, ProofStep::Delete(_)))
        .count();
    assert_eq!(s.stats().deleted_total as usize, deletes);
    assert!(stats.steps_skipped > 0, "trimming should skip something");
}
