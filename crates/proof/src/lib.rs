//! An independent RUP/DRAT proof checker for the KMS pipeline.
//!
//! Every destructive claim in the pipeline — "this fault is redundant",
//! "these nodes are equivalent", "the transformed circuit matches the
//! original" — is an UNSAT verdict from the `kms-sat` CDCL solver. This
//! crate re-derives those verdicts from the solver's DRAT-style proof
//! stream ([`kms_sat::ProofLog`]) using nothing but reverse unit
//! propagation, so a solver bug cannot silently corrupt a netlist: the
//! checker shares no search code with the solver (no conflict analysis,
//! no VSIDS, no restarts — only watched-literal propagation written
//! independently).
//!
//! # Checking model
//!
//! A [`Certificate`] packages the axioms, the derivation steps, the
//! assumptions of the final query, and a *conclusion clause*. The
//! checker validates it backwards (LRAT-style trimming):
//!
//! 1. The conclusion must be built from negated assumptions (the
//!    *assumption-core discharge rule*): for an incremental query
//!    `solve_with(A)` answering UNSAT with core `K ⊆ A`, the conclusion
//!    is `{¬k | k ∈ K}`. Deriving it shows `F ∧ K` — hence `F ∧ A` — is
//!    unsatisfiable. A closed (assumption-free) refutation uses the
//!    empty conclusion.
//! 2. The conclusion must be a RUP consequence of the clauses live at
//!    the end of the stream: asserting its negation (the unit
//!    activation literals of the core) and unit-propagating must
//!    conflict.
//! 3. Walking the stream backwards, deletions are re-activated and only
//!    the `Add` steps reachable from the conclusion's antecedent cone
//!    are RUP-checked; unreachable steps are skipped (trimming), which
//!    keeps per-verdict checking proportional to the relevant cone on
//!    the shared incremental CNF.
//!
//! The trusted base is therefore: this crate's propagation loop, the
//! CNF encoding of the circuit, and the assembly of assumptions — not
//! the solver. See DESIGN §14 for the full trust argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod report;

pub use checker::{check, CheckError, CheckStats};
pub use report::CertificationReport;

use kms_sat::{Lit, ProofStep, Solver};

/// A self-contained UNSAT claim: a proof stream plus the query it is
/// supposed to refute. Borrowed views — certificates are checked
/// eagerly against the live [`kms_sat::ProofLog`] and only digests and
/// counters are retained.
#[derive(Clone, Copy, Debug)]
pub struct Certificate<'a> {
    /// Number of variables the stream may mention.
    pub num_vars: usize,
    /// The original clauses (see [`kms_sat::ProofLog::axioms`]).
    pub axioms: &'a [Vec<Lit>],
    /// The derivation trace (see [`kms_sat::ProofLog::steps`]).
    pub steps: &'a [ProofStep],
    /// The assumptions of the refuted query (empty for a closed proof).
    pub assumptions: &'a [Lit],
    /// The claimed consequence: negations of the failed-assumption
    /// core, or the empty clause for a closed refutation.
    pub conclusion: &'a [Lit],
}

impl<'a> Certificate<'a> {
    /// Builds a certificate for the most recent UNSAT answer of
    /// `solver`, given the query's `assumptions` and the `conclusion`
    /// derived from its core (see [`core_conclusion`]). Returns `None`
    /// if the solver is not logging proofs.
    pub fn from_solver(
        solver: &'a Solver,
        assumptions: &'a [Lit],
        conclusion: &'a [Lit],
    ) -> Option<Certificate<'a>> {
        let proof = solver.proof()?;
        Some(Certificate {
            num_vars: solver.num_vars(),
            axioms: proof.axioms(),
            steps: proof.steps(),
            assumptions,
            conclusion,
        })
    }

    /// Length of the proof stream (axioms plus steps).
    pub fn stream_len(&self) -> usize {
        self.axioms.len() + self.steps.len()
    }
}

/// The conclusion clause of an assumption-based UNSAT verdict: the
/// negation of every literal in [`Solver::unsat_core`]. Empty when the
/// formula is unsatisfiable without assumptions.
pub fn core_conclusion(core: &[Lit]) -> Vec<Lit> {
    core.iter().map(|&l| !l).collect()
}

/// A deterministic 64-bit digest of a certificate (FNV-1a over the
/// stream, the assumptions and the conclusion). Stored by verdict
/// caches so a cached verdict keeps pointing at the exact proof that
/// was checked when it was first derived.
pub fn digest(cert: &Certificate) -> u64 {
    let mut h = Fnv::new();
    h.word(cert.num_vars as u64);
    h.word(cert.axioms.len() as u64);
    for c in cert.axioms {
        h.clause(c);
    }
    h.word(cert.steps.len() as u64);
    for s in cert.steps {
        match s {
            ProofStep::Add(c) => {
                h.word(1);
                h.clause(c);
            }
            ProofStep::Delete(c) => {
                h.word(2);
                h.clause(c);
            }
        }
    }
    h.clause(cert.assumptions);
    h.clause(cert.conclusion);
    h.finish()
}

/// Checks `cert`, records the outcome (timing, sizes, failure detail)
/// into `report` under `label`, and returns the certificate digest on
/// success, `None` on failure. This is the one call sites use: emit,
/// check eagerly, keep only the digest.
pub fn certify(report: &mut CertificationReport, label: &str, cert: &Certificate) -> Option<u64> {
    let start = std::time::Instant::now();
    let outcome = check(cert);
    let elapsed = start.elapsed();
    let ok = outcome.is_ok();
    report.record(label, &outcome, elapsed, cert.stream_len());
    if ok {
        Some(digest(cert))
    } else {
        None
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn clause(&mut self, lits: &[Lit]) {
        self.word(lits.len() as u64);
        for &l in lits {
            self.word(l.index() as u64);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
