//! The backward RUP/DRAT checking engine.
//!
//! Forward pass: replay the stream bookkeeping only (clause births,
//! deletion matching) to reconstruct the final live clause set. Backward
//! pass: RUP-check the conclusion against the final set, then walk the
//! steps in reverse — deletions re-activate their clause, additions
//! deactivate theirs and are RUP-checked only if an already-verified
//! consequence marked them as an antecedent (LRAT-style trimming).
//!
//! The propagation loop here is the checker's entire inference power: a
//! clause is accepted iff asserting the negation of all its literals and
//! running two-watched-literal unit propagation over the live set yields
//! a conflict. No clause learning, no decisions.

use std::collections::HashMap;
use std::fmt;

use kms_sat::{Lit, ProofStep};

use crate::Certificate;

/// Statistics from a successful check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Derivation steps in the stream (adds + deletes).
    pub steps_total: usize,
    /// RUP checks performed (the conclusion plus every marked add).
    pub steps_checked: usize,
    /// Add steps skipped by trimming (not in the conclusion's cone).
    pub steps_skipped: usize,
    /// Axioms that appeared in some antecedent cone.
    pub axioms_used: usize,
    /// Literals enqueued across all propagation runs.
    pub propagations: u64,
}

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A clause mentions a variable outside `num_vars`.
    VarOutOfRange {
        /// Step index (`None` = an axiom or the conclusion).
        step: Option<usize>,
    },
    /// A `Delete` step names a clause that is not live.
    UnknownDelete {
        /// Step index of the offending deletion.
        step: usize,
    },
    /// A conclusion literal is not the negation of an assumption: the
    /// certificate does not discharge the query it claims to.
    ConclusionNotFromCore {
        /// The offending literal.
        lit: Lit,
    },
    /// A clause failed reverse unit propagation.
    NotRup {
        /// Step index (`None` = the conclusion itself).
        step: Option<usize>,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::VarOutOfRange { step: Some(s) } => {
                write!(f, "step {s}: variable out of range")
            }
            CheckError::VarOutOfRange { step: None } => {
                write!(f, "axiom or conclusion: variable out of range")
            }
            CheckError::UnknownDelete { step } => {
                write!(f, "step {step}: deletion of a clause that is not live")
            }
            CheckError::ConclusionNotFromCore { lit } => {
                write!(f, "conclusion literal {lit} is not a negated assumption")
            }
            CheckError::NotRup { step: Some(s) } => {
                write!(f, "step {s}: clause is not a RUP consequence")
            }
            CheckError::NotRup { step: None } => {
                write!(
                    f,
                    "conclusion is not a RUP consequence of the final clause set"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

const NO_REASON: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Assign {
    True,
    False,
    Undef,
}

struct CClause {
    /// Current literal order; positions 0 and 1 are the watched ones for
    /// clauses of length ≥ 2. Watch repairs permute the order but never
    /// change the set.
    lits: Vec<Lit>,
    active: bool,
    marked: bool,
    tautology: bool,
}

struct Checker {
    clauses: Vec<CClause>,
    /// Watch lists indexed by `Lit::index()`. Entries persist across
    /// deactivation (a clause deleted in the stream re-activates during
    /// the backward walk), so propagation skips inactive ids instead of
    /// dropping them.
    watches: Vec<Vec<u32>>,
    /// Ids of all unit clauses ever added (checked for activity on use).
    units: Vec<u32>,
    /// Ids of all empty clauses ever added.
    empties: Vec<u32>,
    assign: Vec<Assign>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    num_vars: usize,
    propagations: u64,
}

/// Sorts, deduplicates and range-checks a clause; reports whether it is
/// a tautology (contains `l` and `¬l`).
fn normalize(
    lits: &[Lit],
    num_vars: usize,
    step: Option<usize>,
) -> Result<(Vec<Lit>, bool), CheckError> {
    let mut c: Vec<Lit> = lits.to_vec();
    c.sort_unstable();
    c.dedup();
    let mut taut = false;
    for (i, &l) in c.iter().enumerate() {
        if l.var().index() >= num_vars {
            return Err(CheckError::VarOutOfRange { step });
        }
        if i + 1 < c.len() && c[i + 1] == !l {
            taut = true;
        }
    }
    Ok((c, taut))
}

impl Checker {
    fn new(num_vars: usize) -> Checker {
        Checker {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * num_vars],
            units: Vec::new(),
            empties: Vec::new(),
            assign: vec![Assign::Undef; num_vars],
            reason: vec![NO_REASON; num_vars],
            trail: Vec::new(),
            num_vars,
            propagations: 0,
        }
    }

    fn value(&self, l: Lit) -> Assign {
        match self.assign[l.var().index()] {
            Assign::Undef => Assign::Undef,
            a => {
                if (a == Assign::True) == l.is_positive() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    /// Registers a clause (already normalized) and returns its id.
    /// Tautologies are inert: they never propagate, conflict, or get
    /// marked, so they take no watch/unit slot.
    fn intake(&mut self, lits: Vec<Lit>, tautology: bool, active: bool) -> u32 {
        let id = self.clauses.len() as u32;
        if !tautology {
            match lits.len() {
                0 => self.empties.push(id),
                1 => self.units.push(id),
                _ => {
                    self.watches[(!lits[0]).index()].push(id);
                    self.watches[(!lits[1]).index()].push(id);
                }
            }
        }
        self.clauses.push(CClause {
            lits,
            active,
            marked: false,
            tautology,
        });
        id
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        self.assign[l.var().index()] = if l.is_positive() {
            Assign::True
        } else {
            Assign::False
        };
        self.reason[l.var().index()] = reason;
        self.trail.push(l);
        self.propagations += 1;
    }

    fn undo(&mut self) {
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            self.assign[v] = Assign::Undef;
            self.reason[v] = NO_REASON;
        }
        self.trail.clear();
    }

    /// Two-watched-literal propagation over the active clause set.
    /// Returns the id of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        let mut qhead = 0;
        while qhead < self.trail.len() {
            let p = self.trail[qhead];
            qhead += 1;
            let ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let ci = ws[i];
                i += 1;
                if !self.clauses[ci as usize].active {
                    self.watches[p.index()].push(ci);
                    continue;
                }
                {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.value(first) == Assign::True {
                    self.watches[p.index()].push(ci);
                    continue;
                }
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.value(lk) != Assign::False {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[(!lk).index()].push(ci);
                        continue 'clauses;
                    }
                }
                self.watches[p.index()].push(ci);
                if self.value(first) == Assign::False {
                    while i < ws.len() {
                        self.watches[p.index()].push(ws[i]);
                        i += 1;
                    }
                    return Some(ci);
                }
                self.enqueue(first, ci);
            }
        }
        None
    }

    /// Marks the antecedent cone of a conflict: the conflicting clause,
    /// plus (transitively) the reason clause of every propagated literal
    /// that contributed to it. Assumed literals terminate the walk.
    fn mark_antecedents(&mut self, confl: u32) {
        let mut involved = vec![false; self.num_vars];
        self.mark(confl, &mut involved);
        for i in (0..self.trail.len()).rev() {
            let v = self.trail[i].var().index();
            if !involved[v] {
                continue;
            }
            let r = self.reason[v];
            if r != NO_REASON {
                self.mark(r, &mut involved);
            }
        }
    }

    fn mark(&mut self, ci: u32, involved: &mut [bool]) {
        let c = &mut self.clauses[ci as usize];
        c.marked = true;
        for &l in &c.lits {
            involved[l.var().index()] = true;
        }
    }

    /// RUP check: asserting the negation of every literal in `lits` and
    /// unit-propagating over the active set must conflict. On success
    /// the conflict's antecedent cone is marked.
    fn rup(&mut self, lits: &[Lit], step: Option<usize>) -> Result<(), CheckError> {
        debug_assert!(self.trail.is_empty());
        let mut confl: Option<u32> = self
            .empties
            .iter()
            .copied()
            .find(|&e| self.clauses[e as usize].active);
        if confl.is_none() {
            for &l in lits {
                match self.value(!l) {
                    Assign::True => {} // duplicate literal
                    Assign::False => {
                        // ¬lits is self-contradictory: the checked clause
                        // is a tautology, vacuously implied.
                        self.undo();
                        return Ok(());
                    }
                    Assign::Undef => self.enqueue(!l, NO_REASON),
                }
            }
        }
        if confl.is_none() {
            for i in 0..self.units.len() {
                let u = self.units[i];
                if !self.clauses[u as usize].active {
                    continue;
                }
                let l = self.clauses[u as usize].lits[0];
                match self.value(l) {
                    Assign::True => {}
                    Assign::False => {
                        confl = Some(u);
                        break;
                    }
                    Assign::Undef => self.enqueue(l, u),
                }
            }
        }
        if confl.is_none() {
            confl = self.propagate();
        }
        let outcome = match confl {
            Some(c) => {
                self.mark_antecedents(c);
                Ok(())
            }
            None => Err(CheckError::NotRup { step }),
        };
        self.undo();
        outcome
    }
}

/// Checks a certificate. See the crate docs for the checking model.
///
/// # Errors
///
/// Returns a [`CheckError`] describing the first defect found: a
/// malformed clause, an unmatched deletion, a conclusion that does not
/// discharge the claimed assumptions, or a failed RUP step.
pub fn check(cert: &Certificate) -> Result<CheckStats, CheckError> {
    let mut ck = Checker::new(cert.num_vars);

    // Forward pass: build the clause timeline. `live` maps a normalized
    // clause to the stack of active ids carrying it, for deletion
    // matching (duplicate clauses are matched most-recent-first, like
    // DRAT checkers do).
    let mut live: HashMap<Vec<Lit>, Vec<u32>> = HashMap::new();
    for ax in cert.axioms {
        let (lits, taut) = normalize(ax, cert.num_vars, None)?;
        let id = ck.intake(lits.clone(), taut, true);
        live.entry(lits).or_default().push(id);
    }
    let num_axioms = ck.clauses.len();
    let mut step_clause: Vec<u32> = Vec::with_capacity(cert.steps.len());
    for (si, step) in cert.steps.iter().enumerate() {
        match step {
            ProofStep::Add(c) => {
                let (lits, taut) = normalize(c, cert.num_vars, Some(si))?;
                let id = ck.intake(lits.clone(), taut, true);
                live.entry(lits).or_default().push(id);
                step_clause.push(id);
            }
            ProofStep::Delete(c) => {
                let (lits, _) = normalize(c, cert.num_vars, Some(si))?;
                let id = live
                    .get_mut(&lits)
                    .and_then(Vec::pop)
                    .ok_or(CheckError::UnknownDelete { step: si })?;
                ck.clauses[id as usize].active = false;
                step_clause.push(id);
            }
        }
    }

    // The discharge rule: every conclusion literal must negate an
    // assumption, so deriving the conclusion refutes the query.
    for &l in cert.conclusion {
        if l.var().index() >= cert.num_vars {
            return Err(CheckError::VarOutOfRange { step: None });
        }
        if !cert.assumptions.contains(&!l) {
            return Err(CheckError::ConclusionNotFromCore { lit: l });
        }
    }

    // Backward pass: conclusion first, then the trimmed step walk.
    let mut checked = 1usize;
    ck.rup(cert.conclusion, None)?;
    for si in (0..cert.steps.len()).rev() {
        let id = step_clause[si] as usize;
        match &cert.steps[si] {
            ProofStep::Delete(_) => ck.clauses[id].active = true,
            ProofStep::Add(_) => {
                ck.clauses[id].active = false;
                if ck.clauses[id].marked && !ck.clauses[id].tautology {
                    let lits = std::mem::take(&mut ck.clauses[id].lits);
                    ck.rup(&lits, Some(si))?;
                    ck.clauses[id].lits = lits;
                }
            }
        }
    }

    let adds = cert
        .steps
        .iter()
        .filter(|s| matches!(s, ProofStep::Add(_)))
        .count();
    let checked_adds = step_clause
        .iter()
        .zip(cert.steps)
        .filter(|(&id, s)| {
            matches!(s, ProofStep::Add(_))
                && ck.clauses[id as usize].marked
                && !ck.clauses[id as usize].tautology
        })
        .count();
    checked += checked_adds;
    Ok(CheckStats {
        steps_total: cert.steps.len(),
        steps_checked: checked,
        steps_skipped: adds - checked_adds,
        axioms_used: ck.clauses[..num_axioms].iter().filter(|c| c.marked).count(),
        propagations: ck.propagations,
    })
}
