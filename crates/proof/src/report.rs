//! Aggregated certification accounting, rendered as text or JSON by the
//! `--certify` modes of `kms`, `kms-sweep` and `table1`.

use std::fmt::Write as _;
use std::time::Duration;

use crate::checker::{CheckError, CheckStats};

/// Counters accumulated over every certificate a run emitted and
/// checked. Merged across phases (ATPG, sweeping, miters, the oracle)
/// into one per-run report; any failure makes the run exit nonzero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CertificationReport {
    /// Certificates emitted (one per UNSAT verdict put to use).
    pub proofs_emitted: usize,
    /// Certificates that passed the independent check.
    pub proofs_checked: usize,
    /// Certificates the checker rejected.
    pub proofs_failed: usize,
    /// Wall-clock time spent inside the checker.
    pub check_time: Duration,
    /// Sum of proof-stream lengths (axioms + steps) across certificates.
    pub proof_stream_total: u64,
    /// Largest single proof stream seen.
    pub proof_stream_max: u64,
    /// RUP checks performed (conclusions plus marked adds).
    pub steps_checked: u64,
    /// Add steps skipped by backward trimming.
    pub steps_skipped: u64,
    /// Literals enqueued by the checker's propagation.
    pub propagations: u64,
    /// Human-readable descriptions of every rejected certificate.
    pub failures: Vec<String>,
}

impl CertificationReport {
    /// `true` when every emitted certificate was checked successfully.
    pub fn all_verified(&self) -> bool {
        self.proofs_failed == 0 && self.proofs_checked == self.proofs_emitted
    }

    /// Records one check outcome under a human-readable `label`.
    pub fn record(
        &mut self,
        label: &str,
        outcome: &Result<CheckStats, CheckError>,
        elapsed: Duration,
        stream_len: usize,
    ) {
        self.proofs_emitted += 1;
        self.check_time += elapsed;
        self.proof_stream_total += stream_len as u64;
        self.proof_stream_max = self.proof_stream_max.max(stream_len as u64);
        match outcome {
            Ok(stats) => {
                self.proofs_checked += 1;
                self.steps_checked += stats.steps_checked as u64;
                self.steps_skipped += stats.steps_skipped as u64;
                self.propagations += stats.propagations;
            }
            Err(e) => {
                self.proofs_failed += 1;
                self.failures.push(format!("{label}: {e}"));
            }
        }
    }

    /// Accumulates another phase's report into this one.
    pub fn merge(&mut self, other: &CertificationReport) {
        self.proofs_emitted += other.proofs_emitted;
        self.proofs_checked += other.proofs_checked;
        self.proofs_failed += other.proofs_failed;
        self.check_time += other.check_time;
        self.proof_stream_total += other.proof_stream_total;
        self.proof_stream_max = self.proof_stream_max.max(other.proof_stream_max);
        self.steps_checked += other.steps_checked;
        self.steps_skipped += other.steps_skipped;
        self.propagations += other.propagations;
        self.failures.extend(other.failures.iter().cloned());
    }

    /// Multi-line text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "certification: {} proofs emitted, {} checked, {} failed",
            self.proofs_emitted, self.proofs_checked, self.proofs_failed
        );
        let _ = writeln!(
            out,
            "  checker time {:.3?}, stream total {} (max {}), \
             rup checks {} (skipped by trimming {}), propagations {}",
            self.check_time,
            self.proof_stream_total,
            self.proof_stream_max,
            self.steps_checked,
            self.steps_skipped,
            self.propagations
        );
        for fail in &self.failures {
            let _ = writeln!(out, "  FAILED: {fail}");
        }
        out
    }

    /// JSON object rendering (no trailing newline).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"proofs_emitted\": {}, \"proofs_checked\": {}, \"proofs_failed\": {}, \
             \"check_time_ns\": {}, \"proof_stream_total\": {}, \"proof_stream_max\": {}, \
             \"steps_checked\": {}, \"steps_skipped\": {}, \"propagations\": {}, \
             \"failures\": [",
            self.proofs_emitted,
            self.proofs_checked,
            self.proofs_failed,
            self.check_time.as_nanos(),
            self.proof_stream_total,
            self.proof_stream_max,
            self.steps_checked,
            self.steps_skipped,
            self.propagations
        );
        for (i, fail) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\"",
                fail.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        out.push_str("]}");
        out
    }
}
