//! Property-based validation of the BDD package: random expression trees
//! are evaluated both through the BDD and directly; quantification and
//! cofactor laws are checked semantically.

use proptest::prelude::*;

use kms_bdd::{Bdd, BddManager};

/// A random Boolean expression over `n` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn expr_strategy(nvars: usize) -> impl Strategy<Value = Expr> {
    let leaf = (0..nvars).prop_map(Expr::Var);
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval(e: &Expr, asg: &[bool]) -> bool {
    match e {
        Expr::Var(i) => asg[*i],
        Expr::Not(a) => !eval(a, asg),
        Expr::And(a, b) => eval(a, asg) && eval(b, asg),
        Expr::Or(a, b) => eval(a, asg) || eval(b, asg),
        Expr::Xor(a, b) => eval(a, asg) ^ eval(b, asg),
    }
}

fn to_bdd(e: &Expr, m: &mut BddManager) -> Bdd {
    match e {
        Expr::Var(i) => m.var(*i),
        Expr::Not(a) => {
            let x = to_bdd(a, m);
            m.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.xor(x, y)
        }
    }
}

const N: usize = 5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bdd_matches_direct_evaluation(e in expr_strategy(N)) {
        let mut m = BddManager::new(N);
        let f = to_bdd(&e, &mut m);
        for mv in 0..(1u32 << N) {
            let asg: Vec<bool> = (0..N).map(|i| (mv >> i) & 1 == 1).collect();
            prop_assert_eq!(m.eval(f, &asg), eval(&e, &asg), "minterm {}", mv);
        }
    }

    #[test]
    fn canonicity(e in expr_strategy(N)) {
        // Two structurally different constructions of the same function
        // produce the same node: f XOR f = false; f OR f = f.
        let mut m = BddManager::new(N);
        let f = to_bdd(&e, &mut m);
        prop_assert_eq!(m.xor(f, f), Bdd::FALSE);
        prop_assert_eq!(m.or(f, f), f);
        let nf = m.not(f);
        prop_assert_eq!(m.not(nf), f);
        prop_assert_eq!(m.and(f, nf), Bdd::FALSE);
        prop_assert_eq!(m.or(f, nf), Bdd::TRUE);
    }

    #[test]
    fn exists_is_or_of_cofactors(e in expr_strategy(N), var in 0..N) {
        let mut m = BddManager::new(N);
        let f = to_bdd(&e, &mut m);
        let lo = m.restrict(f, var, false);
        let hi = m.restrict(f, var, true);
        let or = m.or(lo, hi);
        prop_assert_eq!(m.exists(f, var), or);
        // Shannon expansion reconstructs f.
        let v = m.var(var);
        let rebuilt = m.ite(v, hi, lo);
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn count_sats_matches_truth_table(e in expr_strategy(N)) {
        let mut m = BddManager::new(N);
        let f = to_bdd(&e, &mut m);
        let mut brute = 0u128;
        for mv in 0..(1u32 << N) {
            let asg: Vec<bool> = (0..N).map(|i| (mv >> i) & 1 == 1).collect();
            if eval(&e, &asg) {
                brute += 1;
            }
        }
        prop_assert_eq!(m.count_sats(f), brute);
    }

    #[test]
    fn sat_one_is_a_model(e in expr_strategy(N)) {
        let mut m = BddManager::new(N);
        let f = to_bdd(&e, &mut m);
        match m.sat_one(f) {
            None => prop_assert!(f.is_false()),
            Some(asg) => {
                let full: Vec<bool> =
                    asg.iter().map(|v| v.unwrap_or(false)).collect();
                prop_assert!(m.eval(f, &full));
            }
        }
    }

    #[test]
    fn support_is_sound(e in expr_strategy(N)) {
        let mut m = BddManager::new(N);
        let f = to_bdd(&e, &mut m);
        let support = m.support(f);
        // Variables outside the support never change the value.
        for v in 0..N {
            if support.contains(&v) {
                continue;
            }
            for mv in 0..(1u32 << N) {
                let mut asg: Vec<bool> = (0..N).map(|i| (mv >> i) & 1 == 1).collect();
                let a = m.eval(f, &asg);
                asg[v] = !asg[v];
                prop_assert_eq!(a, m.eval(f, &asg));
            }
        }
    }
}
