use std::collections::HashMap;

/// A reference to a BDD node owned by a [`BddManager`].
///
/// The two terminals are [`Bdd::FALSE`] and [`Bdd::TRUE`]; all other values
/// index internal nodes. References are only meaningful together with the
/// manager that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// `true` for the constant-false terminal.
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// `true` for the constant-true terminal.
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// `true` for either terminal.
    pub fn is_const(self) -> bool {
        self.0 < 2
    }
}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

/// A reduced ordered BDD manager with hash-consing and an ITE operation
/// cache. Variable order is the allocation order (variable 0 at the top).
///
/// The manager provides the *smoothing* operator of McGeer–Brayton viability
/// analysis — existential quantification ([`BddManager::exists`]) — which
/// the paper's Section V.1 uses to ignore late side-inputs ("they are
/// smoothed out").
///
/// ```
/// use kms_bdd::BddManager;
/// let mut m = BddManager::new(2);
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.and(a, b);
/// let g = m.exists(f, 1); // smooth out b: ∃b. a·b = a
/// assert_eq!(g, a);
/// ```
#[derive(Clone, Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Bdd, Bdd), Bdd>,
    ite_cache: HashMap<(Bdd, Bdd, Bdd), Bdd>,
    exists_cache: HashMap<(Bdd, u32), Bdd>,
    num_vars: usize,
}

impl BddManager {
    /// A manager over `num_vars` variables (indices `0..num_vars`).
    pub fn new(num_vars: usize) -> Self {
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                lo: Bdd::FALSE,
                hi: Bdd::FALSE,
            },
            Node {
                var: TERMINAL_VAR,
                lo: Bdd::TRUE,
                hi: Bdd::TRUE,
            },
        ];
        BddManager {
            nodes,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            exists_cache: HashMap::new(),
            num_vars,
        }
    }

    /// The number of variables in the manager's order.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the variable order to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// The number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    fn var_of(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn lo(&self, f: Bdd) -> Bdd {
        self.nodes[f.0 as usize].lo
    }

    fn hi(&self, f: Bdd) -> Bdd {
        self.nodes[f.0 as usize].hi
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            let id = Bdd(u32::try_from(self.nodes.len()).expect("BDD node count overflow"));
            self.nodes.push(Node { var, lo, hi });
            id
        })
    }

    /// The projection function of variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the declared order.
    pub fn var(&mut self, index: usize) -> Bdd {
        assert!(index < self.num_vars, "variable {index} out of order");
        self.mk(index as u32, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negative literal of variable `index`.
    pub fn nvar(&mut self, index: usize) -> Bdd {
        assert!(index < self.num_vars, "variable {index} out of order");
        self.mk(index as u32, Bdd::TRUE, Bdd::FALSE)
    }

    /// If-then-else: `f·g + f̄·h`, the universal connective.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        if self.var_of(f) == var {
            (self.lo(f), self.hi(f))
        } else {
            (f, f)
        }
    }

    /// Complement.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::FALSE, Bdd::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Conjunction over an iterator.
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = Bdd>) -> Bdd {
        fs.into_iter().fold(Bdd::TRUE, |acc, f| self.and(acc, f))
    }

    /// Disjunction over an iterator.
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = Bdd>) -> Bdd {
        fs.into_iter().fold(Bdd::FALSE, |acc, f| self.or(acc, f))
    }

    /// The positive or negative cofactor of `f` with respect to variable
    /// `index`.
    pub fn restrict(&mut self, f: Bdd, index: usize, value: bool) -> Bdd {
        let var = index as u32;
        if f.is_const() || self.var_of(f) > var {
            return f;
        }
        if self.var_of(f) == var {
            return if value { self.hi(f) } else { self.lo(f) };
        }
        let (v, l, h) = (self.var_of(f), self.lo(f), self.hi(f));
        let lo = self.restrict(l, index, value);
        let hi = self.restrict(h, index, value);
        self.mk(v, lo, hi)
    }

    /// Existential quantification of variable `index`: `∃x. f = f|x=0 +
    /// f|x=1`. This is the paper's **smoothing operator** (footnote 2:
    /// "smoothing an input of a gate is equivalent to assuming it to have
    /// the noncontrolling value" — formally, the late inputs are
    /// existentially quantified away).
    pub fn exists(&mut self, f: Bdd, index: usize) -> Bdd {
        let var = index as u32;
        if f.is_const() || self.var_of(f) > var {
            return f;
        }
        if let Some(&r) = self.exists_cache.get(&(f, var)) {
            return r;
        }
        let r = if self.var_of(f) == var {
            let (l, h) = (self.lo(f), self.hi(f));
            self.or(l, h)
        } else {
            let (v, l, h) = (self.var_of(f), self.lo(f), self.hi(f));
            let lo = self.exists(l, index);
            let hi = self.exists(h, index);
            self.mk(v, lo, hi)
        };
        self.exists_cache.insert((f, var), r);
        r
    }

    /// Existential quantification over a set of variables.
    pub fn exists_many(&mut self, f: Bdd, indices: impl IntoIterator<Item = usize>) -> Bdd {
        indices.into_iter().fold(f, |acc, i| self.exists(acc, i))
    }

    /// The support of `f`: the set of variable indices it depends on.
    pub fn support(&self, f: Bdd) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            vars.insert(self.var_of(n) as usize);
            stack.push(self.lo(n));
            stack.push(self.hi(n));
        }
        vars.into_iter().collect()
    }

    /// Evaluates `f` under a complete assignment (indexed by variable).
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut n = f;
        while !n.is_const() {
            let v = self.var_of(n) as usize;
            n = if assignment[v] {
                self.hi(n)
            } else {
                self.lo(n)
            };
        }
        n.is_true()
    }

    /// One satisfying assignment of `f` (values for variables not in the
    /// support are `None`), or `None` if `f` is unsatisfiable.
    pub fn sat_one(&self, f: Bdd) -> Option<Vec<Option<bool>>> {
        if f.is_false() {
            return None;
        }
        let mut out = vec![None; self.num_vars];
        let mut n = f;
        while !n.is_const() {
            let v = self.var_of(n) as usize;
            if self.lo(n).is_false() {
                out[v] = Some(true);
                n = self.hi(n);
            } else {
                out[v] = Some(false);
                n = self.lo(n);
            }
        }
        Some(out)
    }

    /// The number of satisfying assignments of `f` over all
    /// [`BddManager::num_vars`] variables.
    pub fn count_sats(&self, f: Bdd) -> u128 {
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        // count(n) = number of solutions over variables below var(n),
        // weighted afterwards for the variables skipped above the root.
        fn walk(m: &BddManager, n: Bdd, memo: &mut HashMap<Bdd, u128>) -> u128 {
            // Returns the count over variables var(n)..num_vars.
            if n.is_false() {
                return 0;
            }
            if n.is_true() {
                return 1;
            }
            if let Some(&c) = memo.get(&n) {
                return c;
            }
            let v = m.var_of(n);
            let lo = m.lo(n);
            let hi = m.hi(n);
            let lv = if lo.is_const() {
                m.num_vars as u32
            } else {
                m.var_of(lo)
            };
            let hv = if hi.is_const() {
                m.num_vars as u32
            } else {
                m.var_of(hi)
            };
            let cl = walk(m, lo, memo) << (lv - v - 1);
            let ch = walk(m, hi, memo) << (hv - v - 1);
            let c = cl + ch;
            memo.insert(n, c);
            c
        }
        let root_v = if f.is_const() {
            self.num_vars as u32
        } else {
            self.var_of(f)
        };
        walk(self, f, &mut memo) << root_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut m = BddManager::new(3);
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_false());
        let a = m.var(0);
        assert_eq!(m.var(0), a, "hash-consing makes nodes canonical");
        let na = m.not(a);
        assert_eq!(m.nvar(0), na);
        assert_eq!(m.not(na), a);
    }

    #[test]
    fn boolean_identities() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba, "canonical form: commutativity is syntactic");
        let a_or_ab = m.or(a, ab);
        assert_eq!(a_or_ab, a, "absorption");
        let na = m.not(a);
        assert_eq!(m.and(a, na), Bdd::FALSE);
        assert_eq!(m.or(a, na), Bdd::TRUE);
        let x1 = m.xor(a, b);
        let x2 = m.xor(b, a);
        assert_eq!(x1, x2);
        assert_eq!(m.xor(a, a), Bdd::FALSE);
    }

    #[test]
    fn demorgan() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let lhs = m.not(ab);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        assert_eq!(m.restrict(f, 0, false), b);
        let nb = m.not(b);
        assert_eq!(m.restrict(f, 0, true), nb);
        assert_eq!(m.restrict(f, 1, true), m.not(a));
    }

    #[test]
    fn smoothing_removes_dependence() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.and(b, c);
        let f = m.and(a, bc);
        let g = m.exists(f, 1);
        let ac = m.and(a, c);
        assert_eq!(g, ac);
        assert_eq!(m.support(g), vec![0, 2]);
        // ∃a∃b∃c (a·b·c) = 1.
        assert_eq!(m.exists_many(f, [0, 1, 2]), Bdd::TRUE);
        // ∃x of an unsatisfiable function stays unsatisfiable.
        assert_eq!(m.exists(Bdd::FALSE, 0), Bdd::FALSE);
    }

    #[test]
    fn eval_matches_structure() {
        let mut m = BddManager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        for v in 0..8u32 {
            let asg: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            let expect = (asg[0] && asg[1]) || asg[2];
            assert_eq!(m.eval(f, &asg), expect, "{asg:?}");
        }
    }

    #[test]
    fn sat_one_satisfies() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let c = m.var(2);
        let nc = m.not(c);
        let f = m.and(a, nc);
        let asg = m.sat_one(f).unwrap();
        let full: Vec<bool> = asg.iter().map(|v| v.unwrap_or(false)).collect();
        assert!(m.eval(f, &full));
        assert_eq!(m.sat_one(Bdd::FALSE), None);
        assert!(m.sat_one(Bdd::TRUE).is_some());
    }

    #[test]
    fn count_sats_brute_force() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let d = m.var(3);
        let ab = m.and(a, b);
        let cd = m.xor(c, d);
        let f = m.or(ab, cd);
        let mut brute = 0u128;
        for v in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            if m.eval(f, &asg) {
                brute += 1;
            }
        }
        assert_eq!(m.count_sats(f), brute);
        assert_eq!(m.count_sats(Bdd::TRUE), 16);
        assert_eq!(m.count_sats(Bdd::FALSE), 0);
        assert_eq!(m.count_sats(a), 8);
        assert_eq!(m.count_sats(d), 8, "counting respects skipped levels");
    }

    #[test]
    fn node_count_grows_then_shares() {
        let mut m = BddManager::new(8);
        let before = m.node_count();
        let mut f = Bdd::TRUE;
        for i in 0..8 {
            let v = m.var(i);
            f = m.and(f, v);
        }
        // Intermediate conjunctions are retained (no GC), so the growth is
        // at most quadratic in the chain length.
        assert!(m.node_count() - before <= 8 * 8);
        // Rebuilding the same function adds nothing.
        let n = m.node_count();
        let mut g = Bdd::TRUE;
        for i in 0..8 {
            let v = m.var(i);
            g = m.and(g, v);
        }
        assert_eq!(f, g);
        assert_eq!(m.node_count(), n);
    }
}

impl BddManager {
    /// Extracts an irredundant path cover of `f`: one cube per 1-path of
    /// the BDD, as `(positive-literal mask, negative-literal mask)` pairs
    /// over the variable indices. The disjunction of the cubes is exactly
    /// `f`; cubes are disjoint (BDD paths are). Practical for `f` with at
    /// most 64 variables in its support.
    ///
    /// # Panics
    ///
    /// Panics if a support variable index is ≥ 64.
    pub fn to_cubes(&self, f: Bdd) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut stack: Vec<(Bdd, u64, u64)> = vec![(f, 0, 0)];
        while let Some((n, pos, neg)) = stack.pop() {
            if n.is_false() {
                continue;
            }
            if n.is_true() {
                out.push((pos, neg));
                continue;
            }
            let v = self.var_of(n) as usize;
            assert!(v < 64, "cube extraction limited to 64 variables");
            stack.push((self.lo(n), pos, neg | (1 << v)));
            stack.push((self.hi(n), pos | (1 << v), neg));
        }
        out
    }
}

#[cfg(test)]
mod cube_tests {
    use super::*;

    #[test]
    fn cubes_cover_exactly() {
        let mut m = BddManager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let cubes = m.to_cubes(f);
        for mv in 0..16u64 {
            let asg: Vec<bool> = (0..4).map(|i| (mv >> i) & 1 == 1).collect();
            let covered = cubes.iter().any(|&(p, n)| p & !mv == 0 && n & mv == 0);
            assert_eq!(covered, m.eval(f, &asg), "minterm {mv}");
        }
        // BDD paths are disjoint.
        for (i, &(p1, n1)) in cubes.iter().enumerate() {
            for &(p2, n2) in &cubes[i + 1..] {
                assert_ne!((p1 | p2) & (n1 | n2), 0, "cubes must be disjoint");
            }
        }
    }

    #[test]
    fn constant_cubes() {
        let m = BddManager::new(2);
        assert!(m.to_cubes(Bdd::FALSE).is_empty());
        assert_eq!(m.to_cubes(Bdd::TRUE), vec![(0, 0)]);
    }
}
