//! A reduced ordered BDD package for the KMS reproduction.
//!
//! Viability analysis (paper Section V.1, after McGeer–Brayton's *Provably
//! correct critical paths*) manipulates the logic functions along a path
//! symbolically: early side-inputs must carry noncontrolling values, and
//! late side-inputs are **smoothed out** — existentially quantified. This
//! crate provides the symbolic substrate: hash-consed BDDs with ITE,
//! cofactoring, quantification ([`BddManager::exists`]), support and model
//! counting, plus [`NodeFunctions`] for computing the global function of
//! every gate in a network.
//!
//! # Example
//!
//! ```
//! use kms_bdd::BddManager;
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let ab = m.and(a, b);
//! let f = m.or(ab, c);
//! // Smoothing c: ∃c. (a·b + c) is a tautology.
//! assert!(m.exists(f, 2).is_true());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod network;

pub use manager::{Bdd, BddManager};
pub use network::{bdd_equivalent, NodeFunctions};
