//! Building BDDs for the node functions of a [`Network`].
//!
//! Each primary input is mapped to the BDD variable with the same position,
//! so cubes over the inputs (Definition 4.5) and characteristic functions
//! compose directly. Used by the BDD-backed static-sensitization and
//! viability oracles in `kms-timing` and by exact equivalence checks.

use kms_netlist::{GateId, GateKind, Network};

use crate::manager::{Bdd, BddManager};

/// The global function (over the primary inputs) of every live gate.
#[derive(Clone, Debug)]
pub struct NodeFunctions {
    funcs: Vec<Option<Bdd>>,
}

impl NodeFunctions {
    /// Computes the function of every live gate of `net` in `manager`.
    /// The manager's variable order is extended to cover all inputs;
    /// input `i` (positionally) becomes BDD variable `i`.
    ///
    /// ```
    /// use kms_netlist::{Network, GateKind, Delay};
    /// use kms_bdd::{BddManager, NodeFunctions};
    ///
    /// let mut net = Network::new("t");
    /// let a = net.add_input("a");
    /// let b = net.add_input("b");
    /// let g = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
    /// net.add_output("y", g);
    ///
    /// let mut m = BddManager::new(0);
    /// let funcs = NodeFunctions::build(&net, &mut m);
    /// let expect = {
    ///     let va = m.var(0);
    ///     let vb = m.var(1);
    ///     m.and(va, vb)
    /// };
    /// assert_eq!(funcs.of(g), expect);
    /// ```
    pub fn build(net: &Network, manager: &mut BddManager) -> NodeFunctions {
        manager.ensure_vars(net.inputs().len());
        let mut funcs: Vec<Option<Bdd>> = vec![None; net.num_gate_slots()];
        for (i, &id) in net.inputs().iter().enumerate() {
            funcs[id.index()] = Some(manager.var(i));
        }
        for id in net.topo_order() {
            let g = net.gate(id);
            if g.kind == GateKind::Input {
                continue;
            }
            let pin =
                |p: usize| -> Bdd { funcs[g.pins[p].src.index()].expect("fanin computed first") };
            let f = match g.kind {
                GateKind::Input => unreachable!(),
                GateKind::Const(b) => manager.constant(b),
                GateKind::Buf => pin(0),
                GateKind::Not => {
                    let a = pin(0);
                    manager.not(a)
                }
                GateKind::And | GateKind::Nand => {
                    let mut acc = Bdd::TRUE;
                    for p in 0..g.pins.len() {
                        let x = pin(p);
                        acc = manager.and(acc, x);
                    }
                    if g.kind == GateKind::Nand {
                        manager.not(acc)
                    } else {
                        acc
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let mut acc = Bdd::FALSE;
                    for p in 0..g.pins.len() {
                        let x = pin(p);
                        acc = manager.or(acc, x);
                    }
                    if g.kind == GateKind::Nor {
                        manager.not(acc)
                    } else {
                        acc
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let mut acc = Bdd::FALSE;
                    for p in 0..g.pins.len() {
                        let x = pin(p);
                        acc = manager.xor(acc, x);
                    }
                    if g.kind == GateKind::Xnor {
                        manager.not(acc)
                    } else {
                        acc
                    }
                }
                GateKind::Mux => {
                    let s = pin(0);
                    let d0 = pin(1);
                    let d1 = pin(2);
                    manager.ite(s, d1, d0)
                }
            };
            funcs[id.index()] = Some(f);
        }
        NodeFunctions { funcs }
    }

    /// The global function of gate `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was dead when the functions were built.
    pub fn of(&self, id: GateId) -> Bdd {
        self.funcs[id.index()].expect("gate was dead when functions were built")
    }

    /// The function of gate `id`, or `None` if it was dead.
    pub fn get(&self, id: GateId) -> Option<Bdd> {
        self.funcs.get(id.index()).copied().flatten()
    }
}

/// Exact equivalence of two networks by comparing output BDDs in a shared
/// manager (inputs matched positionally).
///
/// # Panics
///
/// Panics if input or output counts differ.
pub fn bdd_equivalent(a: &Network, b: &Network) -> bool {
    assert_eq!(a.inputs().len(), b.inputs().len(), "input count mismatch");
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "output count mismatch"
    );
    let mut m = BddManager::new(a.inputs().len());
    let fa = NodeFunctions::build(a, &mut m);
    let fb = NodeFunctions::build(b, &mut m);
    a.outputs()
        .iter()
        .zip(b.outputs())
        .all(|(oa, ob)| fa.of(oa.src) == fb.of(ob.src))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{Delay, Network};

    #[test]
    fn functions_match_simulation() {
        // A random-ish mixed network, cross-checked on all minterms.
        let mut net = Network::new("mix");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let g1 = net.add_gate(GateKind::Xor, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Nand, &[c, d], Delay::UNIT);
        let g3 = net.add_gate(GateKind::Mux, &[g1, g2, c], Delay::UNIT);
        let g4 = net.add_gate(GateKind::Nor, &[g3, a], Delay::UNIT);
        net.add_output("y", g4);

        let mut m = BddManager::new(4);
        let funcs = NodeFunctions::build(&net, &mut m);
        let f = funcs.of(g4);
        for v in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(m.eval(f, &bits), net.eval_bool(&bits)[0], "minterm {v}");
        }
    }

    #[test]
    fn equivalence_via_bdds() {
        let mut n1 = Network::new("xor");
        let a = n1.add_input("a");
        let b = n1.add_input("b");
        let g = n1.add_gate(GateKind::Xor, &[a, b], Delay::UNIT);
        n1.add_output("y", g);

        let mut n2 = Network::new("sop");
        let a = n2.add_input("a");
        let b = n2.add_input("b");
        let na = n2.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let nb = n2.add_gate(GateKind::Not, &[b], Delay::UNIT);
        let t1 = n2.add_gate(GateKind::And, &[a, nb], Delay::UNIT);
        let t2 = n2.add_gate(GateKind::And, &[na, b], Delay::UNIT);
        let o = n2.add_gate(GateKind::Or, &[t1, t2], Delay::UNIT);
        n2.add_output("y", o);

        assert!(bdd_equivalent(&n1, &n2));

        let mut n3 = Network::new("xnor");
        let a = n3.add_input("a");
        let b = n3.add_input("b");
        let g = n3.add_gate(GateKind::Xnor, &[a, b], Delay::UNIT);
        n3.add_output("y", g);
        assert!(!bdd_equivalent(&n1, &n3));
    }

    #[test]
    fn constants_and_buffers() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let c = net.add_const(true);
        let bf = net.add_gate(GateKind::Buf, &[a], Delay::ZERO);
        let g = net.add_gate(GateKind::And, &[bf, c], Delay::UNIT);
        net.add_output("y", g);
        let mut m = BddManager::new(1);
        let funcs = NodeFunctions::build(&net, &mut m);
        assert_eq!(funcs.of(g), m.var(0));
        assert_eq!(funcs.of(c), Bdd::TRUE);
    }
}
