//! Static test-set compaction.
//!
//! ATPG emits one vector per targeted fault; most vectors detect many
//! faults, so the set is highly redundant. [`compact_tests`] implements
//! classic reverse-order greedy compaction: walk the vectors from last to
//! first (late deterministic vectors tend to catch the hard faults) and
//! keep a vector only if it detects a fault nothing kept so far detects.
//! Coverage over the given fault list is preserved exactly.

use kms_netlist::Network;

use crate::fault::Fault;
use crate::fsim::fault_simulate;

/// The result of compacting a test set.
#[derive(Clone, Debug)]
pub struct CompactionReport {
    /// The kept vectors, in original relative order.
    pub tests: Vec<Vec<bool>>,
    /// Number of vectors dropped.
    pub dropped: usize,
    /// Number of faults the compacted set detects (equal to the original
    /// set's detection count).
    pub detected: usize,
}

/// Compacts `tests` against `faults` without losing coverage.
///
/// # Panics
///
/// Panics if a vector's width differs from the network's input count.
pub fn compact_tests(net: &Network, faults: &[Fault], tests: &[Vec<bool>]) -> CompactionReport {
    // Per-fault detection sets, computed once per vector via a restricted
    // fault simulation (each vector alone).
    // Cheaper: one simulation per vector over all faults.
    let mut detects: Vec<Vec<usize>> = vec![Vec::new(); tests.len()];
    for (ti, t) in tests.iter().enumerate() {
        let report = fault_simulate(net, faults, std::slice::from_ref(t));
        for (fi, hit) in report.detected_by.iter().enumerate() {
            if hit.is_some() {
                detects[ti].push(fi);
            }
        }
    }
    let total_detected = {
        let mut any = vec![false; faults.len()];
        for d in &detects {
            for &fi in d {
                any[fi] = true;
            }
        }
        any.iter().filter(|&&b| b).count()
    };
    // Reverse greedy.
    let mut covered = vec![false; faults.len()];
    let mut keep = vec![false; tests.len()];
    for ti in (0..tests.len()).rev() {
        if detects[ti].iter().any(|&fi| !covered[fi]) {
            keep[ti] = true;
            for &fi in &detects[ti] {
                covered[fi] = true;
            }
        }
    }
    let kept: Vec<Vec<bool>> = tests
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(t, _)| t.clone())
        .collect();
    CompactionReport {
        dropped: tests.len() - kept.len(),
        detected: total_detected,
        tests: kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{analyze_all, Engine};
    use crate::fault::all_faults;
    use kms_netlist::{Delay, GateKind, Network};

    fn adder_cone() -> Network {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::Xor, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::And, &[g1, c], Delay::UNIT);
        let g3 = net.add_gate(GateKind::Or, &[g2, a], Delay::UNIT);
        net.add_output("y", g3);
        net
    }

    #[test]
    fn compaction_preserves_coverage() {
        let net = adder_cone();
        let faults = all_faults(&net);
        let report = analyze_all(&net, Engine::Sat);
        let tests = report.tests();
        let before = fault_simulate(&net, &faults, &tests);
        let compact = compact_tests(&net, &faults, &tests);
        let after = fault_simulate(&net, &faults, &compact.tests);
        assert_eq!(before.detected(), after.detected());
        assert_eq!(compact.detected, before.detected());
        assert!(compact.tests.len() <= tests.len());
        assert_eq!(compact.dropped, tests.len() - compact.tests.len());
    }

    #[test]
    fn compaction_actually_shrinks_redundant_sets() {
        let net = adder_cone();
        let faults = all_faults(&net);
        // Exhaustive vectors: massively redundant.
        let tests: Vec<Vec<bool>> = (0..8u32)
            .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
            .collect();
        let compact = compact_tests(&net, &faults, &tests);
        assert!(compact.tests.len() < tests.len());
        // Exhaustive vectors define the ceiling: compaction must match it.
        let full = fault_simulate(&net, &faults, &tests);
        let cov = fault_simulate(&net, &faults, &compact.tests);
        assert_eq!(cov.detected(), full.detected());
    }

    #[test]
    fn empty_inputs() {
        let net = adder_cone();
        let faults = all_faults(&net);
        let compact = compact_tests(&net, &faults, &[]);
        assert!(compact.tests.is_empty());
        assert_eq!(compact.detected, 0);
        let compact = compact_tests(&net, &[], &[vec![true, false, true]]);
        assert!(compact.tests.is_empty(), "no faults → no vector is needed");
    }
}
