//! Single stuck-at-fault machinery for the KMS reproduction: fault
//! modeling, PODEM and SAT-based test generation, fault simulation, and
//! redundancy identification.
//!
//! In the paper, *redundancy* means single stuck-at-fault redundancy: a
//! fault no input vector can detect (Section I, footnote 1). The KMS
//! algorithm needs exactly two oracles from this crate:
//!
//! * [`is_testable`] — testable/untestable verdicts for the stuck faults
//!   on "the first edge of P" (Fig. 3);
//! * [`find_redundant_fault`] / [`analyze`] — the "remove remaining
//!   redundancies in any order" phase, standing in for the Schulz–Auth
//!   ATPG the original implementation called.
//!
//! # Example
//!
//! ```
//! use kms_netlist::{Network, GateKind, Delay};
//! use kms_atpg::{analyze, Engine};
//!
//! // y = a + a·b has a classic redundancy: the AND output s-a-0.
//! let mut net = Network::new("r");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let t = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
//! let y = net.add_gate(GateKind::Or, &[a, t], Delay::UNIT);
//! net.add_output("y", y);
//!
//! let report = analyze(&net, Engine::Sat);
//! assert!(!report.fully_testable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "fault-inject")]
pub mod chaos;
mod classify;
mod compact;
mod engine;
mod fault;
mod fsim;
mod inject;
mod podem;

pub use classify::{
    classify_faults, classify_faults_report, scan_for_redundancy, ClassifyReport, FaultBudget,
    ParallelOptions, RedundancyScan,
};
pub use compact::{compact_tests, CompactionReport};
pub use engine::{
    analyze, analyze_all, find_redundant_fault, is_testable, random_tests, redundancy_count,
    Engine, Testability, TestabilityReport, UnknownReason,
};
pub use fault::{all_faults, collapsed_faults, Fault, FaultSite};
pub use fsim::{
    fault_simulate, fault_simulate_cone, fault_simulate_cone_jobs, fault_simulate_cone_jobs_with,
    fault_simulate_cone_with, fault_simulate_jobs, ConeSim, CoverageReport,
};
pub use inject::{faulty_copy, inject_fault_in_place};
pub use podem::{podem, Podem, PodemResult};
