//! Pattern-parallel fault simulation.
//!
//! Simulates 64 test vectors at once per fault (serial-fault,
//! parallel-pattern — the classic trade for combinational circuits) and
//! reports which faults each test set detects. Used to validate ATPG test
//! sets and to grade fault coverage in the benchmark harness.

use kms_netlist::Network;

use crate::fault::Fault;
use crate::inject::faulty_copy;

/// The coverage result of simulating a test set against a fault list.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// For each fault (parallel to the input list), the index of the first
    /// detecting test, or `None`.
    pub detected_by: Vec<Option<usize>>,
}

impl CoverageReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.detected_by.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.detected_by.is_empty() {
            1.0
        } else {
            self.detected() as f64 / self.detected_by.len() as f64
        }
    }
}

/// Simulates `tests` (each one Boolean per input) against every fault in
/// `faults`, 64 patterns at a time.
///
/// # Panics
///
/// Panics if a test vector's width differs from the input count.
pub fn fault_simulate(net: &Network, faults: &[Fault], tests: &[Vec<bool>]) -> CoverageReport {
    let n = net.inputs().len();
    for t in tests {
        assert_eq!(t.len(), n, "test width mismatch");
    }
    // Pack tests into word batches.
    let mut batches: Vec<(usize, Vec<u64>)> = Vec::new();
    for (start, chunk) in tests.chunks(64).enumerate().map(|(i, c)| (i * 64, c)) {
        let mut words = vec![0u64; n];
        for (lane, t) in chunk.iter().enumerate() {
            for (i, &b) in t.iter().enumerate() {
                if b {
                    words[i] |= 1 << lane;
                }
            }
        }
        batches.push((start, words));
    }
    let good: Vec<Vec<u64>> = batches
        .iter()
        .map(|(_, words)| net.eval_words(words))
        .collect();
    let mut detected_by = vec![None; faults.len()];
    for (fi, &fault) in faults.iter().enumerate() {
        let faulty = faulty_copy(net, fault);
        'batches: for (bi, (start, words)) in batches.iter().enumerate() {
            let bad = faulty.eval_words(words);
            let lanes = (tests.len() - start).min(64) as u32;
            let mask = if lanes == 64 {
                !0u64
            } else {
                (1u64 << lanes) - 1
            };
            for (g, b) in good[bi].iter().zip(&bad) {
                let diff = (g ^ b) & mask;
                if diff != 0 {
                    detected_by[fi] = Some(start + diff.trailing_zeros() as usize);
                    break 'batches;
                }
            }
        }
    }
    CoverageReport { detected_by }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use kms_netlist::{Delay, GateKind, Network};

    fn and_or() -> Network {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Or, &[g1, c], Delay::UNIT);
        net.add_output("y", g2);
        net
    }

    #[test]
    fn exhaustive_tests_cover_all_irredundant_faults() {
        let net = and_or();
        let faults = all_faults(&net);
        let tests: Vec<Vec<bool>> = (0..8u32)
            .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
            .collect();
        let report = fault_simulate(&net, &faults, &tests);
        // This circuit is irredundant: exhaustive tests catch everything.
        assert_eq!(report.detected(), faults.len());
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_vector_catches_some() {
        let net = and_or();
        let faults = all_faults(&net);
        let report = fault_simulate(&net, &faults, &[vec![true, true, false]]);
        assert!(report.detected() > 0);
        assert!(report.detected() < faults.len());
        // The detecting index is always 0 here.
        assert!(report.detected_by.iter().flatten().all(|&i| i == 0));
    }

    #[test]
    fn empty_test_set_detects_nothing() {
        let net = and_or();
        let faults = all_faults(&net);
        let report = fault_simulate(&net, &faults, &[]);
        assert_eq!(report.detected(), 0);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn more_than_64_tests_batch_correctly() {
        let net = and_or();
        let faults = all_faults(&net);
        // 100 copies of a useless vector, then one useful vector.
        let mut tests = vec![vec![false, false, true]; 100];
        tests.push(vec![true, true, false]);
        let report = fault_simulate(&net, &faults, &tests);
        // Faults detected only by the last vector report index 100.
        assert!(report.detected_by.iter().flatten().any(|&i| i == 100));
    }
}
