//! Pattern-parallel fault simulation.
//!
//! Simulates 64 test vectors at once per fault (serial-fault,
//! parallel-pattern — the classic trade for combinational circuits) and
//! reports which faults each test set detects. Used to validate ATPG test
//! sets and to grade fault coverage in the benchmark harness.

use kms_netlist::Network;

use crate::fault::Fault;
#[cfg(test)]
use crate::inject::faulty_copy;

/// The coverage result of simulating a test set against a fault list.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// For each fault (parallel to the input list), the index of the first
    /// detecting test, or `None`.
    pub detected_by: Vec<Option<usize>>,
}

impl CoverageReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.detected_by.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.detected_by.is_empty() {
            1.0
        } else {
            self.detected() as f64 / self.detected_by.len() as f64
        }
    }
}

/// Simulates `tests` (each one Boolean per input) against every fault in
/// `faults`, 64 patterns at a time.
///
/// Runs the cone-restricted propagation of [`fault_simulate_cone`]: the
/// good circuit is evaluated once per 64-pattern batch and each fault
/// re-evaluates only its transitive fanout. The report is bit-identical
/// to the historical clone-per-fault simulation, which survives as the
/// test-only reference below.
///
/// # Panics
///
/// Panics if a test vector's width differs from the input count.
pub fn fault_simulate(net: &Network, faults: &[Fault], tests: &[Vec<bool>]) -> CoverageReport {
    fault_simulate_cone(net, faults, tests)
}

/// The original whole-network simulation: clones the network with the
/// fault injected and re-evaluates every gate, per fault. Quadratic in
/// practice and kept only as the oracle the cone variant is checked
/// against.
#[cfg(test)]
fn fault_simulate_reference(
    net: &Network,
    faults: &[Fault],
    tests: &[Vec<bool>],
) -> CoverageReport {
    let n = net.inputs().len();
    for t in tests {
        assert_eq!(t.len(), n, "test width mismatch");
    }
    // Pack tests into word batches.
    let mut batches: Vec<(usize, Vec<u64>)> = Vec::new();
    for (start, chunk) in tests.chunks(64).enumerate().map(|(i, c)| (i * 64, c)) {
        let mut words = vec![0u64; n];
        for (lane, t) in chunk.iter().enumerate() {
            for (i, &b) in t.iter().enumerate() {
                if b {
                    words[i] |= 1 << lane;
                }
            }
        }
        batches.push((start, words));
    }
    let good: Vec<Vec<u64>> = batches
        .iter()
        .map(|(_, words)| net.eval_words(words))
        .collect();
    let mut detected_by = vec![None; faults.len()];
    for (fi, &fault) in faults.iter().enumerate() {
        let faulty = faulty_copy(net, fault);
        'batches: for (bi, (start, words)) in batches.iter().enumerate() {
            let bad = faulty.eval_words(words);
            let lanes = (tests.len() - start).min(64) as u32;
            let mask = if lanes == 64 {
                !0u64
            } else {
                (1u64 << lanes) - 1
            };
            for (g, b) in good[bi].iter().zip(&bad) {
                let diff = (g ^ b) & mask;
                if diff != 0 {
                    detected_by[fi] = Some(start + diff.trailing_zeros() as usize);
                    break 'batches;
                }
            }
        }
    }
    CoverageReport { detected_by }
}

/// Cone-restricted pattern-parallel fault simulation: the good-circuit
/// word values are computed **once per 64-pattern batch**, and each fault
/// re-simulates only its transitive fanout with the stuck value injected.
/// Per-fault cost drops from `O(network × batches)` (plus a full network
/// clone) to `O(TFO × batches)` — the classic single-fault-propagation
/// trade. The report is identical to [`fault_simulate`]'s: same
/// first-detecting-test indices, batch by batch, output by output.
pub fn fault_simulate_cone(net: &Network, faults: &[Fault], tests: &[Vec<bool>]) -> CoverageReport {
    use crate::fault::FaultSite;
    use kms_netlist::GateKind;

    let n = net.inputs().len();
    for t in tests {
        assert_eq!(t.len(), n, "test width mismatch");
    }
    let mut batches: Vec<(usize, Vec<u64>)> = Vec::new();
    for (start, chunk) in tests.chunks(64).enumerate().map(|(i, c)| (i * 64, c)) {
        let mut words = vec![0u64; n];
        for (lane, t) in chunk.iter().enumerate() {
            for (i, &b) in t.iter().enumerate() {
                if b {
                    words[i] |= 1 << lane;
                }
            }
        }
        batches.push((start, words));
    }
    // Good values for every gate, once per batch (shared by all faults).
    let good: Vec<Vec<u64>> = batches
        .iter()
        .map(|(_, words)| net.node_words(words))
        .collect();
    let fanouts = net.fanouts();
    let topo = net.topo_order();
    let mut topo_pos = vec![usize::MAX; net.num_gate_slots()];
    for (i, &g) in topo.iter().enumerate() {
        topo_pos[g.index()] = i;
    }

    let slots = net.num_gate_slots();
    let mut in_tfo = vec![false; slots];
    let mut faulty = vec![0u64; slots];
    let mut detected_by = vec![None; faults.len()];
    let mut cone: Vec<kms_netlist::GateId> = Vec::new();
    let mut pin_buf: Vec<u64> = Vec::new();

    for (fi, &fault) in faults.iter().enumerate() {
        // The fault's cone, in topological order.
        cone.clear();
        let mut stack = vec![fault.observing_gate()];
        while let Some(g) = stack.pop() {
            if in_tfo[g.index()] {
                continue;
            }
            in_tfo[g.index()] = true;
            cone.push(g);
            for c in &fanouts[g.index()] {
                stack.push(c.gate);
            }
        }
        cone.sort_by_key(|g| topo_pos[g.index()]);
        let observed: Vec<usize> = net
            .outputs()
            .iter()
            .enumerate()
            .filter(|(_, o)| in_tfo[o.src.index()])
            .map(|(i, _)| i)
            .collect();
        if !observed.is_empty() {
            let stuck_word = if fault.stuck { !0u64 } else { 0u64 };
            'batches: for (bi, (start, _)) in batches.iter().enumerate() {
                let gv = &good[bi];
                for &g in &cone {
                    let gi = g.index();
                    if fault.site == FaultSite::GateOutput(g) {
                        faulty[gi] = stuck_word;
                        continue;
                    }
                    let gate = net.gate(g);
                    if gate.kind == GateKind::Input {
                        // An input stem inside the cone can only be the
                        // fault site itself (inputs have no fanins), which
                        // the branch above handled.
                        faulty[gi] = gv[gi];
                        continue;
                    }
                    pin_buf.clear();
                    pin_buf.extend(gate.pins.iter().enumerate().map(|(pi, p)| {
                        if fault.site == FaultSite::Conn(kms_netlist::ConnRef::new(g, pi)) {
                            stuck_word
                        } else if in_tfo[p.src.index()] {
                            faulty[p.src.index()]
                        } else {
                            gv[p.src.index()]
                        }
                    }));
                    faulty[gi] = kms_netlist::eval_gate_words(gate.kind, &pin_buf);
                }
                let lanes = (tests.len() - start).min(64) as u32;
                let mask = if lanes == 64 {
                    !0u64
                } else {
                    (1u64 << lanes) - 1
                };
                // Outputs in list order, as `fault_simulate` scans them
                // (unaffected outputs never differ, so skipping them
                // preserves the reported index).
                for &oi in &observed {
                    let src = net.outputs()[oi].src.index();
                    let diff = (gv[src] ^ faulty[src]) & mask;
                    if diff != 0 {
                        detected_by[fi] = Some(start + diff.trailing_zeros() as usize);
                        break 'batches;
                    }
                }
            }
        }
        for &g in &cone {
            in_tfo[g.index()] = false;
        }
    }
    CoverageReport { detected_by }
}

/// As [`fault_simulate_cone`], split across `jobs` scoped threads with
/// deterministic chunk-order reassembly (see [`fault_simulate_jobs`]).
pub fn fault_simulate_cone_jobs(
    net: &Network,
    faults: &[Fault],
    tests: &[Vec<bool>],
    jobs: usize,
) -> CoverageReport {
    if jobs <= 1 || faults.len() < 2 * jobs {
        return fault_simulate_cone(net, faults, tests);
    }
    let chunk = faults.len().div_ceil(jobs);
    let mut detected_by = Vec::with_capacity(faults.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = faults
            .chunks(chunk)
            .map(|part| s.spawn(move || fault_simulate_cone(net, part, tests).detected_by))
            .collect();
        for h in handles {
            detected_by.extend(h.join().expect("fault-simulation worker panicked"));
        }
    });
    CoverageReport { detected_by }
}

/// As [`fault_simulate`], but splits the fault list across `jobs` scoped
/// threads. Each chunk is simulated independently (serial-fault simulation
/// has no cross-fault state) and the per-chunk results are concatenated in
/// chunk order, so the report is identical to the sequential one for any
/// `jobs`.
pub fn fault_simulate_jobs(
    net: &Network,
    faults: &[Fault],
    tests: &[Vec<bool>],
    jobs: usize,
) -> CoverageReport {
    if jobs <= 1 || faults.len() < 2 * jobs {
        return fault_simulate(net, faults, tests);
    }
    let chunk = faults.len().div_ceil(jobs);
    let mut detected_by = Vec::with_capacity(faults.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = faults
            .chunks(chunk)
            .map(|part| s.spawn(move || fault_simulate(net, part, tests).detected_by))
            .collect();
        for h in handles {
            detected_by.extend(h.join().expect("fault-simulation worker panicked"));
        }
    });
    CoverageReport { detected_by }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use kms_netlist::{Delay, GateKind, Network};

    fn and_or() -> Network {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Or, &[g1, c], Delay::UNIT);
        net.add_output("y", g2);
        net
    }

    #[test]
    fn exhaustive_tests_cover_all_irredundant_faults() {
        let net = and_or();
        let faults = all_faults(&net);
        let tests: Vec<Vec<bool>> = (0..8u32)
            .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
            .collect();
        let report = fault_simulate(&net, &faults, &tests);
        // This circuit is irredundant: exhaustive tests catch everything.
        assert_eq!(report.detected(), faults.len());
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_vector_catches_some() {
        let net = and_or();
        let faults = all_faults(&net);
        let report = fault_simulate(&net, &faults, &[vec![true, true, false]]);
        assert!(report.detected() > 0);
        assert!(report.detected() < faults.len());
        // The detecting index is always 0 here.
        assert!(report.detected_by.iter().flatten().all(|&i| i == 0));
    }

    #[test]
    fn empty_test_set_detects_nothing() {
        let net = and_or();
        let faults = all_faults(&net);
        let report = fault_simulate(&net, &faults, &[]);
        assert_eq!(report.detected(), 0);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn cone_variant_matches_full_simulation() {
        let net = and_or();
        let faults = all_faults(&net);
        for tests in [
            (0..8u32)
                .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
                .collect::<Vec<Vec<bool>>>(),
            vec![vec![true, true, false]],
            {
                let mut t = vec![vec![false, false, true]; 100];
                t.push(vec![true, true, false]);
                t
            },
            Vec::new(),
        ] {
            let reference = fault_simulate_reference(&net, &faults, &tests);
            let cone = fault_simulate_cone(&net, &faults, &tests);
            assert_eq!(reference.detected_by, cone.detected_by);
            let public = fault_simulate(&net, &faults, &tests);
            assert_eq!(reference.detected_by, public.detected_by);
            for jobs in [1, 3] {
                let j = fault_simulate_cone_jobs(&net, &faults, &tests, jobs);
                assert_eq!(reference.detected_by, j.detected_by, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn jobs_variant_matches_sequential() {
        let net = and_or();
        let faults = all_faults(&net);
        let tests: Vec<Vec<bool>> = (0..8u32)
            .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
            .collect();
        let seq = fault_simulate_reference(&net, &faults, &tests);
        for jobs in [0, 1, 2, 3, 8] {
            let par = fault_simulate_jobs(&net, &faults, &tests, jobs);
            assert_eq!(par.detected_by, seq.detected_by, "jobs={jobs}");
        }
    }

    #[test]
    fn more_than_64_tests_batch_correctly() {
        let net = and_or();
        let faults = all_faults(&net);
        // 100 copies of a useless vector, then one useful vector.
        let mut tests = vec![vec![false, false, true]; 100];
        tests.push(vec![true, true, false]);
        let report = fault_simulate(&net, &faults, &tests);
        // Faults detected only by the last vector report index 100.
        assert!(report.detected_by.iter().flatten().any(|&i| i == 100));
    }
}
