//! Pattern-parallel fault simulation.
//!
//! Simulates 64 test vectors at once per fault (serial-fault,
//! parallel-pattern — the classic trade for combinational circuits) and
//! reports which faults each test set detects. Used to validate ATPG test
//! sets and to grade fault coverage in the benchmark harness.

use kms_netlist::{Network, Topology};

use crate::fault::Fault;
#[cfg(test)]
use crate::inject::faulty_copy;

/// The coverage result of simulating a test set against a fault list.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// For each fault (parallel to the input list), the index of the first
    /// detecting test, or `None`.
    pub detected_by: Vec<Option<usize>>,
}

impl CoverageReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.detected_by.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.detected_by.is_empty() {
            1.0
        } else {
            self.detected() as f64 / self.detected_by.len() as f64
        }
    }
}

/// Simulates `tests` (each one Boolean per input) against every fault in
/// `faults`, 64 patterns at a time.
///
/// Runs the cone-restricted propagation of [`fault_simulate_cone`]: the
/// good circuit is evaluated once per 64-pattern batch and each fault
/// re-evaluates only its transitive fanout. The report is bit-identical
/// to the historical clone-per-fault simulation, which survives as the
/// test-only reference below.
///
/// # Panics
///
/// Panics if a test vector's width differs from the input count.
pub fn fault_simulate(net: &Network, faults: &[Fault], tests: &[Vec<bool>]) -> CoverageReport {
    fault_simulate_cone(net, faults, tests)
}

/// The original whole-network simulation: clones the network with the
/// fault injected and re-evaluates every gate, per fault. Quadratic in
/// practice and kept only as the oracle the cone variant is checked
/// against.
#[cfg(test)]
fn fault_simulate_reference(
    net: &Network,
    faults: &[Fault],
    tests: &[Vec<bool>],
) -> CoverageReport {
    let n = net.inputs().len();
    for t in tests {
        assert_eq!(t.len(), n, "test width mismatch");
    }
    // Pack tests into word batches.
    let mut batches: Vec<(usize, Vec<u64>)> = Vec::new();
    for (start, chunk) in tests.chunks(64).enumerate().map(|(i, c)| (i * 64, c)) {
        let mut words = vec![0u64; n];
        for (lane, t) in chunk.iter().enumerate() {
            for (i, &b) in t.iter().enumerate() {
                if b {
                    words[i] |= 1 << lane;
                }
            }
        }
        batches.push((start, words));
    }
    let good: Vec<Vec<u64>> = batches
        .iter()
        .map(|(_, words)| net.eval_words(words))
        .collect();
    let mut detected_by = vec![None; faults.len()];
    for (fi, &fault) in faults.iter().enumerate() {
        let faulty = faulty_copy(net, fault);
        'batches: for (bi, (start, words)) in batches.iter().enumerate() {
            let bad = faulty.eval_words(words);
            let lanes = (tests.len() - start).min(64) as u32;
            let mask = if lanes == 64 {
                !0u64
            } else {
                (1u64 << lanes) - 1
            };
            for (g, b) in good[bi].iter().zip(&bad) {
                let diff = (g ^ b) & mask;
                if diff != 0 {
                    detected_by[fi] = Some(start + diff.trailing_zeros() as usize);
                    break 'batches;
                }
            }
        }
    }
    CoverageReport { detected_by }
}

/// Cone-restricted pattern-parallel fault simulation: the good-circuit
/// word values are computed **once per 64-pattern batch**, and each fault
/// re-simulates only its transitive fanout with the stuck value injected.
/// Per-fault cost drops from `O(network × batches)` (plus a full network
/// clone) to `O(TFO × batches)` — the classic single-fault-propagation
/// trade. The report is identical to [`fault_simulate`]'s: same
/// first-detecting-test indices, batch by batch, output by output.
pub fn fault_simulate_cone(net: &Network, faults: &[Fault], tests: &[Vec<bool>]) -> CoverageReport {
    fault_simulate_cone_with(net, &Topology::build(net), faults, tests)
}

/// As [`fault_simulate_cone`], against a caller-held [`Topology`] cache so
/// repeated calls on an unchanged network stop paying for a fresh fanout
/// table and Kahn pass each time (the drop cascade of the classification
/// engine calls this once per committed batch).
pub fn fault_simulate_cone_with(
    net: &Network,
    topo: &Topology,
    faults: &[Fault],
    tests: &[Vec<bool>],
) -> CoverageReport {
    use crate::fault::FaultSite;
    use kms_netlist::GateKind;

    let n = net.inputs().len();
    for t in tests {
        assert_eq!(t.len(), n, "test width mismatch");
    }
    let mut batches: Vec<(usize, Vec<u64>)> = Vec::new();
    for (start, chunk) in tests.chunks(64).enumerate().map(|(i, c)| (i * 64, c)) {
        let mut words = vec![0u64; n];
        for (lane, t) in chunk.iter().enumerate() {
            for (i, &b) in t.iter().enumerate() {
                if b {
                    words[i] |= 1 << lane;
                }
            }
        }
        batches.push((start, words));
    }
    // Good values for every gate, once per batch (shared by all faults).
    let good: Vec<Vec<u64>> = batches
        .iter()
        .map(|(_, words)| net.node_words(words))
        .collect();
    let slots = net.num_gate_slots();
    let mut in_tfo = vec![false; slots];
    let mut faulty = vec![0u64; slots];
    let mut detected_by = vec![None; faults.len()];
    let mut cone: Vec<kms_netlist::GateId> = Vec::new();
    let mut pin_buf: Vec<u64> = Vec::new();

    for (fi, &fault) in faults.iter().enumerate() {
        // The fault's cone, in topological order.
        cone.clear();
        let mut stack = vec![fault.observing_gate()];
        while let Some(g) = stack.pop() {
            if in_tfo[g.index()] {
                continue;
            }
            in_tfo[g.index()] = true;
            cone.push(g);
            for c in topo.fanouts(g) {
                stack.push(c.gate);
            }
        }
        cone.sort_by_key(|&g| topo.pos(g));
        let observed: Vec<usize> = net
            .outputs()
            .iter()
            .enumerate()
            .filter(|(_, o)| in_tfo[o.src.index()])
            .map(|(i, _)| i)
            .collect();
        if !observed.is_empty() {
            let stuck_word = if fault.stuck { !0u64 } else { 0u64 };
            'batches: for (bi, (start, _)) in batches.iter().enumerate() {
                let gv = &good[bi];
                for &g in &cone {
                    let gi = g.index();
                    if fault.site == FaultSite::GateOutput(g) {
                        faulty[gi] = stuck_word;
                        continue;
                    }
                    let gate = net.gate(g);
                    if gate.kind == GateKind::Input {
                        // An input stem inside the cone can only be the
                        // fault site itself (inputs have no fanins), which
                        // the branch above handled.
                        faulty[gi] = gv[gi];
                        continue;
                    }
                    pin_buf.clear();
                    pin_buf.extend(gate.pins.iter().enumerate().map(|(pi, p)| {
                        if fault.site == FaultSite::Conn(kms_netlist::ConnRef::new(g, pi)) {
                            stuck_word
                        } else if in_tfo[p.src.index()] {
                            faulty[p.src.index()]
                        } else {
                            gv[p.src.index()]
                        }
                    }));
                    faulty[gi] = kms_netlist::eval_gate_words(gate.kind, &pin_buf);
                }
                let lanes = (tests.len() - start).min(64) as u32;
                let mask = if lanes == 64 {
                    !0u64
                } else {
                    (1u64 << lanes) - 1
                };
                // Outputs in list order, as `fault_simulate` scans them
                // (unaffected outputs never differ, so skipping them
                // preserves the reported index).
                for &oi in &observed {
                    let src = net.outputs()[oi].src.index();
                    let diff = (gv[src] ^ faulty[src]) & mask;
                    if diff != 0 {
                        detected_by[fi] = Some(start + diff.trailing_zeros() as usize);
                        break 'batches;
                    }
                }
            }
        }
        for &g in &cone {
            in_tfo[g.index()] = false;
        }
    }
    CoverageReport { detected_by }
}

/// One 64-pattern batch of a [`ConeSim`]: packed input words plus the
/// cached good-circuit node words for those patterns. `good` is refreshed
/// lazily — `dirty` marks a batch whose words changed since the last
/// simulation, so a burst of pushes costs one re-simulation at the next
/// query instead of one per vector.
struct ConeSimBatch {
    start: usize,
    words: Vec<u64>,
    good: Vec<u64>,
    dirty: bool,
}

/// Incremental single-fault drop checker over a growing test set.
///
/// [`fault_simulate_cone_with`] re-packs the tests and re-simulates the
/// good circuit on **every call**, which is the right amortization for one
/// batched call over thousands of faults but a poor one for the drop
/// cascade's access pattern: one fault at a time against a vector set that
/// only ever grows by appending. `ConeSim` keeps the packed words and the
/// good-circuit node values cached, so [`ConeSim::push`] costs one
/// single-word batch re-simulation and [`ConeSim::first_detecting`] is a
/// pure faulty-cone walk with no allocation.
///
/// `first_detecting` reports exactly what [`fault_simulate_cone_with`]
/// would report for the pushed vectors in push order — same batch
/// boundaries, same output scan order — so swapping a call site over never
/// changes which vector a drop is credited to.
pub struct ConeSim<'n> {
    net: &'n Network,
    topo: &'n Topology,
    tests: Vec<Vec<bool>>,
    batches: Vec<ConeSimBatch>,
    in_tfo: Vec<bool>,
    faulty: Vec<u64>,
    cone: Vec<kms_netlist::GateId>,
    stack: Vec<kms_netlist::GateId>,
    pin_buf: Vec<u64>,
}

impl<'n> ConeSim<'n> {
    /// An empty checker for `net` against a caller-held topology cache.
    pub fn new(net: &'n Network, topo: &'n Topology) -> ConeSim<'n> {
        let slots = net.num_gate_slots();
        ConeSim {
            net,
            topo,
            tests: Vec::new(),
            batches: Vec::new(),
            in_tfo: vec![false; slots],
            faulty: vec![0u64; slots],
            cone: Vec::new(),
            stack: Vec::new(),
            pin_buf: Vec::new(),
        }
    }

    /// Number of vectors pushed so far.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether any vector has been pushed.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// The `i`-th pushed vector.
    pub fn test(&self, i: usize) -> &[bool] {
        &self.tests[i]
    }

    /// Appends one test vector, extending the current 64-pattern batch (or
    /// opening a new one). The batch's good values are refreshed lazily at
    /// the next [`ConeSim::first_detecting`] call, so a push is just the
    /// bit-packing.
    ///
    /// # Panics
    ///
    /// Panics if the vector's width differs from the input count.
    pub fn push(&mut self, test: &[bool]) {
        let n = self.net.inputs().len();
        assert_eq!(test.len(), n, "test width mismatch");
        let lane = self.tests.len() % 64;
        if lane == 0 {
            self.batches.push(ConeSimBatch {
                start: self.tests.len(),
                words: vec![0u64; n],
                good: Vec::new(),
                dirty: true,
            });
        }
        let batch = self.batches.last_mut().expect("batch just ensured");
        for (i, &b) in test.iter().enumerate() {
            if b {
                batch.words[i] |= 1 << lane;
            }
        }
        batch.dirty = true;
        self.tests.push(test.to_vec());
    }

    /// Re-simulates the good circuit for every dirty batch, walking the
    /// cached topo order (no per-call `topo_order()` recompute, which is
    /// what makes replaying a peer's commit log cheap). Unused lanes stay
    /// zero, exactly as the one-shot packer leaves them, so the good
    /// values agree lane for lane with [`fault_simulate_cone_with`].
    fn refresh_good(&mut self) {
        let inputs = self.net.inputs();
        for batch in &mut self.batches {
            if !batch.dirty {
                continue;
            }
            batch.good.clear();
            batch.good.resize(self.net.num_gate_slots(), 0);
            for (i, &id) in inputs.iter().enumerate() {
                batch.good[id.index()] = batch.words[i];
            }
            for &id in self.topo.order() {
                let g = self.net.gate(id);
                if g.kind == kms_netlist::GateKind::Input {
                    continue;
                }
                self.pin_buf.clear();
                self.pin_buf
                    .extend(g.pins.iter().map(|p| batch.good[p.src.index()]));
                batch.good[id.index()] = kms_netlist::eval_gate_words(g.kind, &self.pin_buf);
            }
            batch.dirty = false;
        }
    }

    /// Index of the first pushed vector that detects `fault`, or `None` —
    /// bit-identical to `fault_simulate_cone_with(net, topo, &[fault],
    /// &pushed).detected_by[0]`.
    pub fn first_detecting(&mut self, fault: Fault) -> Option<usize> {
        use crate::fault::FaultSite;
        use kms_netlist::GateKind;

        self.refresh_good();
        self.cone.clear();
        self.stack.push(fault.observing_gate());
        while let Some(g) = self.stack.pop() {
            if self.in_tfo[g.index()] {
                continue;
            }
            self.in_tfo[g.index()] = true;
            self.cone.push(g);
            for c in self.topo.fanouts(g) {
                self.stack.push(c.gate);
            }
        }
        self.cone.sort_by_key(|&g| self.topo.pos(g));
        let mut hit = None;
        let observed = self
            .net
            .outputs()
            .iter()
            .any(|o| self.in_tfo[o.src.index()]);
        if observed {
            let stuck_word = if fault.stuck { !0u64 } else { 0u64 };
            'batches: for batch in &self.batches {
                let gv = &batch.good;
                for &g in &self.cone {
                    let gi = g.index();
                    if fault.site == FaultSite::GateOutput(g) {
                        self.faulty[gi] = stuck_word;
                        continue;
                    }
                    let gate = self.net.gate(g);
                    if gate.kind == GateKind::Input {
                        self.faulty[gi] = gv[gi];
                        continue;
                    }
                    self.pin_buf.clear();
                    for (pi, p) in gate.pins.iter().enumerate() {
                        let v = if fault.site == FaultSite::Conn(kms_netlist::ConnRef::new(g, pi)) {
                            stuck_word
                        } else if self.in_tfo[p.src.index()] {
                            self.faulty[p.src.index()]
                        } else {
                            gv[p.src.index()]
                        };
                        self.pin_buf.push(v);
                    }
                    self.faulty[gi] = kms_netlist::eval_gate_words(gate.kind, &self.pin_buf);
                }
                let lanes = (self.tests.len() - batch.start).min(64) as u32;
                let mask = if lanes == 64 {
                    !0u64
                } else {
                    (1u64 << lanes) - 1
                };
                for o in self.net.outputs() {
                    let src = o.src.index();
                    if !self.in_tfo[src] {
                        continue;
                    }
                    let diff = (gv[src] ^ self.faulty[src]) & mask;
                    if diff != 0 {
                        hit = Some(batch.start + diff.trailing_zeros() as usize);
                        break 'batches;
                    }
                }
            }
        }
        for &g in &self.cone {
            self.in_tfo[g.index()] = false;
        }
        hit
    }
}

/// As [`fault_simulate_cone`], split across `jobs` scoped threads with
/// deterministic chunk-order reassembly (see [`fault_simulate_jobs`]).
pub fn fault_simulate_cone_jobs(
    net: &Network,
    faults: &[Fault],
    tests: &[Vec<bool>],
    jobs: usize,
) -> CoverageReport {
    fault_simulate_cone_jobs_with(net, &Topology::build(net), faults, tests, jobs)
}

/// As [`fault_simulate_cone_jobs`], against a caller-held [`Topology`]
/// cache shared (by reference) across all worker threads.
pub fn fault_simulate_cone_jobs_with(
    net: &Network,
    topo: &Topology,
    faults: &[Fault],
    tests: &[Vec<bool>],
    jobs: usize,
) -> CoverageReport {
    if jobs <= 1 || faults.len() < 2 * jobs {
        return fault_simulate_cone_with(net, topo, faults, tests);
    }
    let chunk = faults.len().div_ceil(jobs);
    let mut detected_by = Vec::with_capacity(faults.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = faults
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || fault_simulate_cone_with(net, topo, part, tests).detected_by)
            })
            .collect();
        for h in handles {
            detected_by.extend(h.join().expect("fault-simulation worker panicked"));
        }
    });
    CoverageReport { detected_by }
}

/// As [`fault_simulate`], but splits the fault list across `jobs` scoped
/// threads. Each chunk is simulated independently (serial-fault simulation
/// has no cross-fault state) and the per-chunk results are concatenated in
/// chunk order, so the report is identical to the sequential one for any
/// `jobs`.
pub fn fault_simulate_jobs(
    net: &Network,
    faults: &[Fault],
    tests: &[Vec<bool>],
    jobs: usize,
) -> CoverageReport {
    if jobs <= 1 || faults.len() < 2 * jobs {
        return fault_simulate(net, faults, tests);
    }
    let chunk = faults.len().div_ceil(jobs);
    let mut detected_by = Vec::with_capacity(faults.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = faults
            .chunks(chunk)
            .map(|part| s.spawn(move || fault_simulate(net, part, tests).detected_by))
            .collect();
        for h in handles {
            detected_by.extend(h.join().expect("fault-simulation worker panicked"));
        }
    });
    CoverageReport { detected_by }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use kms_netlist::{Delay, GateKind, Network};

    fn and_or() -> Network {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Or, &[g1, c], Delay::UNIT);
        net.add_output("y", g2);
        net
    }

    #[test]
    fn exhaustive_tests_cover_all_irredundant_faults() {
        let net = and_or();
        let faults = all_faults(&net);
        let tests: Vec<Vec<bool>> = (0..8u32)
            .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
            .collect();
        let report = fault_simulate(&net, &faults, &tests);
        // This circuit is irredundant: exhaustive tests catch everything.
        assert_eq!(report.detected(), faults.len());
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_vector_catches_some() {
        let net = and_or();
        let faults = all_faults(&net);
        let report = fault_simulate(&net, &faults, &[vec![true, true, false]]);
        assert!(report.detected() > 0);
        assert!(report.detected() < faults.len());
        // The detecting index is always 0 here.
        assert!(report.detected_by.iter().flatten().all(|&i| i == 0));
    }

    #[test]
    fn empty_test_set_detects_nothing() {
        let net = and_or();
        let faults = all_faults(&net);
        let report = fault_simulate(&net, &faults, &[]);
        assert_eq!(report.detected(), 0);
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn cone_variant_matches_full_simulation() {
        let net = and_or();
        let faults = all_faults(&net);
        for tests in [
            (0..8u32)
                .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
                .collect::<Vec<Vec<bool>>>(),
            vec![vec![true, true, false]],
            {
                let mut t = vec![vec![false, false, true]; 100];
                t.push(vec![true, true, false]);
                t
            },
            Vec::new(),
        ] {
            let reference = fault_simulate_reference(&net, &faults, &tests);
            let cone = fault_simulate_cone(&net, &faults, &tests);
            assert_eq!(reference.detected_by, cone.detected_by);
            let public = fault_simulate(&net, &faults, &tests);
            assert_eq!(reference.detected_by, public.detected_by);
            for jobs in [1, 3] {
                let j = fault_simulate_cone_jobs(&net, &faults, &tests, jobs);
                assert_eq!(reference.detected_by, j.detected_by, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn jobs_variant_matches_sequential() {
        let net = and_or();
        let faults = all_faults(&net);
        let tests: Vec<Vec<bool>> = (0..8u32)
            .map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect())
            .collect();
        let seq = fault_simulate_reference(&net, &faults, &tests);
        for jobs in [0, 1, 2, 3, 8] {
            let par = fault_simulate_jobs(&net, &faults, &tests, jobs);
            assert_eq!(par.detected_by, seq.detected_by, "jobs={jobs}");
        }
    }

    #[test]
    fn cone_sim_matches_one_shot_calls() {
        let net = and_or();
        let topo = Topology::build(&net);
        let faults = all_faults(&net);
        // 70 vectors forces a second batch; the first few are useless so
        // some faults are detected only deep into the set.
        let mut tests = vec![vec![false, false, false]; 3];
        tests.extend((0..67u32).map(|m| (0..3).map(|i| (m >> i) & 1 == 1).collect::<Vec<bool>>()));
        let mut sim = ConeSim::new(&net, &topo);
        assert!(sim.is_empty());
        for (upto, t) in tests.iter().enumerate() {
            sim.push(t);
            assert_eq!(sim.len(), upto + 1);
            let so_far = &tests[..=upto];
            let oneshot = fault_simulate_cone_with(&net, &topo, &faults, so_far);
            for (fi, &fault) in faults.iter().enumerate() {
                assert_eq!(
                    sim.first_detecting(fault),
                    oneshot.detected_by[fi],
                    "fault {fi} after {} vectors",
                    upto + 1
                );
            }
        }
        assert_eq!(sim.test(0), &tests[0][..]);
    }

    #[test]
    fn more_than_64_tests_batch_correctly() {
        let net = and_or();
        let faults = all_faults(&net);
        // 100 copies of a useless vector, then one useful vector.
        let mut tests = vec![vec![false, false, true]; 100];
        tests.push(vec![true, true, false]);
        let report = fault_simulate(&net, &faults, &tests);
        // Faults detected only by the last vector report index 100.
        assert!(report.detected_by.iter().flatten().any(|&i| i == 100));
    }
}
