//! Shared-CNF, fault-dropping, optionally parallel fault classification.
//!
//! The per-fault SAT engine in [`crate::engine`] rebuilds a solver and
//! re-encodes the (cone of the) network for every query. This module keeps
//! **one incremental solver per worker**: good-circuit clauses are
//! Tseitin-encoded at most once per gate per network state (lazily, as
//! fault cones demand them), and each fault adds only its faulty-cone
//! clauses, guarded by a fresh *activation literal* that is assumed for the
//! query and permanently falsified afterwards.
//!
//! # Parallel runtime
//!
//! Survivor slots are claimed in **chunks** off a shared atomic counter
//! (work-stealing without a deque: an idle worker simply claims the next
//! chunk, so load imbalance is bounded by one chunk). Each worker runs its
//! own [`SharedCnf`]; commit is **cooperative** — there is no committer
//! thread. A worker that finishes a chunk parks it in a [`BTreeMap`] under
//! the commit mutex, and whichever worker completes the in-order-next
//! chunk drains the consecutive prefix, committing verdicts strictly in
//! fault-list order inside one short critical section (usually its own
//! chunk, in its own timeslice — no context switch per chunk). Two
//! mechanisms keep speculation from outrunning the drop cascade: workers
//! **pace** themselves to within a few chunks of the commit frontier
//! (past it they park on a condvar instead of solving faults the cascade
//! is about to settle — the reason a 4-worker run on a single hardware
//! thread costs about the same as the in-line engine), and every
//! committed detecting vector is republished through a [`CommitLog`] that
//! workers cone-simulate claimed faults against before solving. Workers also **share learnt clauses**: short/low-LBD lemmas whose
//! literals all map to gate slots are translated into slot space, published
//! to a bounded pool, and imported by the other workers at chunk
//! boundaries. An imported lemma holds in every evaluation of the circuit
//! (it was derived from clauses that do), so it can only prune search,
//! never change a verdict — which is also why sharing is disabled under
//! [`ParallelOptions::certify`], where every solver clause must have a DRAT
//! derivation.
//!
//! Three properties make the engine exactly reproducible at any thread
//! count:
//!
//! 1. **Canonical verdicts.** A redundancy verdict is an UNSAT answer —
//!    a semantic property of the formula, independent of search history.
//!    Test vectors are canonicalized to the *lexicographically smallest*
//!    detecting input assignment (a chain of incremental queries pinning
//!    inputs to 0 where possible), which is likewise a function of the
//!    fault alone, not of the learnt clauses a worker happens to carry.
//! 2. **Dynamic fault-dropping with in-order commit.** Committed vectors
//!    accumulate in a pending batch; each slot is checked against the batch
//!    when its turn comes (one word-parallel cone simulation per slot), and
//!    every [`DROP_FLUSH`] commits the batch is flushed across all
//!    still-undecided survivors at once, setting the advisory drop flags
//!    workers use to skip speculative solves. A dropped fault is credited
//!    to the earliest committed vector that detects it. All of this is a
//!    function of slot order alone, so the cascade — and therefore the
//!    whole [`TestabilityReport`] — is identical at any job count, bit for
//!    bit.
//! 3. **Deterministic assembly.** Verdict slots are indexed by fault-list
//!    position; thread scheduling can change only how much speculative work
//!    is wasted, never what is reported.
//!
//! The topology tables every stage needs (CSR fanouts, topo order and
//! positions) are computed **once per run** as a [`Topology`] and shared by
//! reference across the pre-screen simulation, every worker, and the drop
//! cascade — previously each of those recomputed `fanouts()` and
//! `topo_order()` per call, which dominated the profile on the larger MCNC
//! circuits.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use kms_analysis::{AnalysisOptions, FaultRef, StaticAnalysis};
use kms_dataflow::{DataflowAnalysis, DataflowOptions, LearnedImp};
use kms_netlist::{ConnRef, GateId, GateKind, Network, Topology};
use kms_proof::{core_conclusion, Certificate, CertificationReport};
use kms_sat::{lock_unpoisoned, Budget, Lit, SatResult, Solver, Stats};

use crate::engine::{
    encode_gate_with_guard, random_tests, Testability, TestabilityReport, UnknownReason,
};
use crate::fault::{Fault, FaultSite};
use crate::fsim::{fault_simulate_cone_jobs_with, fault_simulate_cone_with, ConeSim};
use crate::podem::{podem, PodemResult};

/// PODEM backtrack budget for the structural pre-pass of
/// [`SharedCnf::classify`]. Deliberately modest: on the MCNC circuits every
/// testable survivor of the random pre-screen falls within ~100 backtracks,
/// while redundancy proofs (decision-tree exhaustion, the worst case on the
/// reconvergent carry-skip adders) are cheaper as incremental UNSAT queries
/// on the shared CNF, so burning a large budget before giving up only adds
/// latency.
const PODEM_BUDGET: u64 = 128;

/// Committed vectors accumulate up to this many before one word-parallel
/// flush simulates them against every still-undecided survivor (64 = one
/// machine word of patterns, so the flush costs the same cone walk a
/// single-vector cascade pass used to).
const DROP_FLUSH: usize = 64;

/// Lemma-sharing export caps: clauses longer than this or with higher LBD
/// stay private to their worker (binaries always qualify).
const SHARED_LEMMA_MAX_LEN: usize = 8;
const SHARED_LEMMA_MAX_LBD: u32 = 4;

/// Upper bound on pooled lemmas per run; beyond it workers keep their
/// clauses private (logged nowhere — the pool is advisory pruning only).
const LEMMA_POOL_CAP: usize = 1 << 14;

/// Hard cap for `jobs: 0` auto-detection. Classification workers contend
/// on memory bandwidth well before this; past experiments show no row
/// improving beyond 8 workers even on wide machines.
const MAX_AUTO_JOBS: usize = 8;

/// Resource ceilings applied to every solver query issued while
/// classifying one fault: the shared-CNF decision query and each lex-min
/// canonicalization step each get the full allowance. A query that
/// exhausts its budget degrades that fault to [`Testability::Unknown`]
/// instead of blocking the run. Conflict and propagation ceilings are
/// schedule-independent per query; the wall-clock ceiling is inherently
/// machine-dependent and suits interactive use only.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FaultBudget {
    /// Abort a query after this many additional conflicts.
    pub max_conflicts: Option<u64>,
    /// Abort a query after this many additional unit propagations.
    pub max_propagations: Option<u64>,
    /// Abort a query this many milliseconds after it starts (sampled at
    /// the solver's conflict boundary, so overruns are bounded).
    pub timeout_ms: Option<u64>,
}

impl FaultBudget {
    /// A budget limiting conflicts only.
    pub fn conflicts(n: u64) -> FaultBudget {
        FaultBudget {
            max_conflicts: Some(n),
            max_propagations: None,
            timeout_ms: None,
        }
    }

    /// Parses the CLI `--fault-budget` spec: a bare number caps
    /// conflicts; otherwise comma-separated `conflicts=N`, `props=N`
    /// (unit propagations), `ms=N` (wall-clock per query).
    ///
    /// # Errors
    ///
    /// A human-readable message for a malformed spec.
    pub fn parse(spec: &str) -> Result<FaultBudget, String> {
        if let Ok(n) = spec.parse::<u64>() {
            return Ok(FaultBudget::conflicts(n));
        }
        let mut budget = FaultBudget {
            max_conflicts: None,
            max_propagations: None,
            timeout_ms: None,
        };
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value in budget spec, got {part:?}"))?;
            let n: u64 = value
                .parse()
                .map_err(|_| format!("bad number in {part:?}"))?;
            match key {
                "conflicts" => budget.max_conflicts = Some(n),
                "props" | "propagations" => budget.max_propagations = Some(n),
                "ms" | "timeout_ms" => budget.timeout_ms = Some(n),
                other => return Err(format!("unknown budget key {other:?}")),
            }
        }
        Ok(budget)
    }

    /// The equivalent [`kms_sat::Budget`], armed afresh per solver call.
    pub(crate) fn to_budget(self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(n) = self.max_conflicts {
            b = b.with_conflicts(n);
        }
        if let Some(n) = self.max_propagations {
            b = b.with_propagations(n);
        }
        if let Some(ms) = self.timeout_ms {
            b = b.with_timeout(std::time::Duration::from_millis(ms));
        }
        b
    }
}

/// Knobs for the shared-CNF classification engine
/// ([`crate::Engine::SharedSat`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelOptions {
    /// Worker threads for SAT classification and the pattern-parallel
    /// pre-screen; `0` uses the machine's available parallelism (capped),
    /// `1` runs fully in-line (no threads spawned). Any value yields the
    /// identical [`TestabilityReport`].
    pub jobs: usize,
    /// Random patterns simulated up front so that easily-detected faults
    /// never reach the solver; `0` disables the pre-screen.
    pub drop_patterns: usize,
    /// Seed for the random pre-screen patterns.
    pub seed: u64,
    /// Run the `kms-analysis` static pass first: faults it proves
    /// untestable are reported redundant without any PODEM/SAT query, and
    /// statically merged nodes share one good-circuit literal, shrinking
    /// the CNF. Both substitutions are semantic (proved over all inputs),
    /// so the report stays bit-identical to a run without the prescreen.
    ///
    /// Off by default for classification: with the budgeted-PODEM
    /// pre-pass in front of the solver, the analysis build costs more
    /// than the handful of SAT conflicts it saves on every Table I row
    /// with ≥ 400 gates (EXPERIMENTS E14 — rd73 classifies in 0.03 s
    /// bare vs 0.20 s with the implication tier). The pass still earns
    /// its keep where proofs are the product (`kms-sweep`, `kms-lint`)
    /// or on the SAT-hard carry-skip adders; opt in there.
    pub static_prescreen: bool,
    /// Include the counterexample-refined SAT sweep in the prescreen's
    /// static analysis. Off by default: on the MCNC/CSA suite the sweep's
    /// solver time exceeds what it saves downstream (BENCH_sweep showed a
    /// net slowdown on 6 of 9 circuits, down to 0.30× on rd73), while the
    /// implication-only tier keeps nearly all of the proof yield. Verdict
    /// substitutions remain semantic either way, so the report is
    /// bit-identical at any tier.
    pub prescreen_sweep: bool,
    /// Run the `kms-dataflow` pass on top of the static prescreen: a
    /// second, stronger tier between the implication prescreen and the
    /// SAT queries. Ternary/cofactor constants, CODC-unobservable cuts,
    /// and recursive-learning refutations prove additional survivors
    /// redundant without a solver call, and the learned indirect binary
    /// implications are seeded into each worker's shared CNF as axiom
    /// clauses. Every dataflow verdict is a proved-over-all-inputs fact
    /// (each carries a replayable witness, checked by
    /// `kms-core::cross_check_static_analysis`), and the axioms are
    /// globally valid implications, so the report stays bit-identical to
    /// a SAT-only run.
    ///
    /// Off by default: the pass is a proof engine, not an accelerator —
    /// its build time exceeds the whole bare classification on every
    /// measured row (EXPERIMENTS E14 — rd73 5.4 s with vs 0.03 s
    /// without). No effect unless [`ParallelOptions::static_prescreen`]
    /// is on; disabled under [`ParallelOptions::certify`] like the rest
    /// of the prescreen.
    pub prescreen_dataflow: bool,
    /// Emit and independently check a RUP/DRAT certificate for every
    /// `Redundant` verdict. All redundancy claims — including PODEM's
    /// decision-tree exhaustions, the static prescreen's implication
    /// proofs, and the structural unreachable-output shortcut — are
    /// re-derived as incremental UNSAT queries on the shared CNF so each
    /// comes with an assumption core, and the static prescreen's
    /// literal-aliasing is disabled so the certified formula is the plain
    /// Tseitin encoding of the circuit. Cross-worker lemma sharing is
    /// also disabled (an imported clause has no derivation in the
    /// importer's proof stream). Verdicts are semantic, so the
    /// [`TestabilityReport`] stays bit-identical; only the cost changes.
    pub certify: bool,
    /// Per-fault solver budget. `None` (the default) runs unbudgeted and
    /// every fault is decided. With a budget, an exhausted query yields
    /// [`Testability::Unknown`] for that fault alone; when no fault
    /// aborts at any job count, the report is bit-identical to an
    /// unbudgeted run (the budget check never steers the search).
    pub fault_budget: Option<FaultBudget>,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            jobs: 1,
            drop_patterns: 256,
            seed: 0x4B4D_5331,
            static_prescreen: false,
            prescreen_sweep: false,
            prescreen_dataflow: false,
            certify: false,
            fault_budget: None,
        }
    }
}

impl ParallelOptions {
    /// `jobs` resolved against the machine (0 = available parallelism,
    /// capped at [`MAX_AUTO_JOBS`]).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_AUTO_JOBS)
        } else {
            self.jobs
        }
    }
}

/// The outcome of [`scan_for_redundancy`].
#[derive(Clone, Debug)]
pub struct RedundancyScan {
    /// The first redundant fault in fault-list order, if any.
    pub redundant: Option<Fault>,
    /// SAT-derived test vectors committed before the scan stopped, in
    /// commit order — callers cache these across removal restarts so later
    /// scans drop the same faults without a solver call.
    pub tests: Vec<Vec<bool>>,
    /// Aggregated solver counters across every worker of the scan.
    pub solver: Stats,
    /// Faults that reached a per-fault decision procedure (PODEM or SAT)
    /// across every worker — what the prescreens and drops did not settle.
    pub engine_calls: u64,
    /// Certification accounting when [`ParallelOptions::certify`] is on.
    /// Covers every certificate the workers emitted, including
    /// speculative verdicts past the first committed redundancy — a
    /// failed check anywhere is a soundness alarm regardless of whether
    /// that verdict was put to use.
    pub certification: Option<CertificationReport>,
    /// Faults committed as [`Testability::Unknown`] before the scan
    /// stopped (budget exhaustion or an isolated worker panic). A
    /// non-zero count means "no redundancy found" is no longer a proof
    /// of irredundancy — callers degrade their exit status accordingly.
    pub unknown: usize,
}

/// [`classify_faults`] plus engine diagnostics: aggregated SAT-solver
/// counters and, under [`ParallelOptions::certify`], the certification
/// accounting for every redundancy proof.
#[derive(Clone, Debug)]
pub struct ClassifyReport {
    /// The per-fault verdicts.
    pub testability: TestabilityReport,
    /// Solver counters summed over every worker's incremental solver.
    pub solver: Stats,
    /// Faults that reached a per-fault decision procedure (PODEM or SAT):
    /// total faults minus those settled by random-vector simulation, the
    /// drop cascade, or a static prescreen. The direct measure of
    /// prescreen coverage — [`Stats::sat_calls`] alone undercounts it
    /// because PODEM settles most faults without touching the solver.
    pub engine_calls: u64,
    /// Present iff certification was requested; any
    /// [`CertificationReport::proofs_failed`] is a soundness alarm.
    pub certification: Option<CertificationReport>,
}

impl ClassifyReport {
    /// JSON object rendering (no trailing newline): verdict tallies, the
    /// summed solver counters, and the certification ledger when present.
    pub fn render_json(&self) -> String {
        let redundant = self
            .testability
            .verdicts
            .iter()
            .filter(|v| v.is_redundant())
            .count();
        let unknown = self
            .testability
            .verdicts
            .iter()
            .filter(|v| v.is_unknown())
            .count();
        let mut out = format!(
            "{{\"faults\": {}, \"testable\": {}, \"redundant\": {}, \"unknown\": {}, \
             \"engine_calls\": {}, \"solver\": {}",
            self.testability.faults.len(),
            self.testability.testable_count(),
            redundant,
            unknown,
            self.engine_calls,
            self.solver.render_json()
        );
        let reasons = self.testability.unknown_reasons();
        if !reasons.is_empty() {
            out.push_str(", \"unknown_reasons\": {");
            for (i, (reason, count)) in reasons.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {count}", reason.mnemonic()));
            }
            out.push('}');
        }
        if let Some(cert) = &self.certification {
            out.push_str(", \"certification\": ");
            out.push_str(&cert.render_json());
        }
        out.push('}');
        out
    }
}

/// Indirect binary implications learned by the dataflow prescreen,
/// indexed by gate slot for lazy seeding: once both endpoints of an
/// axiom acquire good-circuit literals, the worker adds the binary
/// clause `¬lit(a) ∨ lit(b)` to its solver. The implications are proved
/// over all inputs, so the added clauses are entailed by the circuit
/// encoding and can only prune search, never change a verdict.
pub(crate) struct Axioms {
    /// `(antecedent, consequent)` literal pairs, as `(gate, value)`.
    list: Vec<((GateId, bool), (GateId, bool))>,
    /// Axiom indices touching each gate slot.
    by_gate: Vec<Vec<u32>>,
}

impl Axioms {
    fn build(net: &Network, imps: &[LearnedImp]) -> Axioms {
        let list: Vec<_> = imps.iter().map(|i| (i.a, i.b)).collect();
        let mut by_gate = vec![Vec::new(); net.num_gate_slots()];
        for (i, &((a, _), (b, _))) in list.iter().enumerate() {
            by_gate[a.index()].push(i as u32);
            if b != a {
                by_gate[b.index()].push(i as u32);
            }
        }
        Axioms { list, by_gate }
    }
}

/// A learnt clause translated into gate-slot space for cross-worker
/// sharing: `(slot, phase)` pairs, where `phase` is the literal's sign on
/// the slot's good-circuit value. Such a clause holds in **every**
/// evaluation of the circuit (see [`SharedCnf::export_shared`]), so any
/// worker whose CNF encodes all the mentioned slots may add it.
type SharedLemma = Vec<(u32, bool)>;

/// Bounded append-only pool of slot-space lemmas shared between workers.
/// Publishing and fetching are batched per chunk, so the mutex is touched
/// a handful of times per chunk, not per conflict.
struct LemmaPool {
    lemmas: Mutex<Vec<SharedLemma>>,
}

/// Append-only log of committed detecting vectors, written by the
/// committer and snapshotted by workers at chunk boundaries. A worker
/// cone-simulates each claimed fault against its snapshot before solving:
/// any hit means the committer's own in-order drop check will decide the
/// slot from the same vector, so the worker sends [`WorkerMsg::Skipped`]
/// instead of burning a speculative solve. Purely advisory — a stale
/// snapshot costs a wasted solve, never a different verdict.
struct CommitLog {
    vecs: Mutex<Vec<Vec<bool>>>,
}

impl CommitLog {
    fn new() -> CommitLog {
        CommitLog {
            vecs: Mutex::new(Vec::new()),
        }
    }

    /// Appends one committed detecting vector.
    fn publish(&self, v: &[bool]) {
        lock_unpoisoned(&self.vecs).push(v.to_vec());
    }

    /// Returns every vector published since the caller's cursor, advancing
    /// the cursor past them.
    fn fetch_after(&self, cursor: &mut usize) -> Vec<Vec<bool>> {
        let vecs = lock_unpoisoned(&self.vecs);
        let fresh = vecs[*cursor..].to_vec();
        *cursor = vecs.len();
        fresh
    }
}

impl LemmaPool {
    fn new() -> LemmaPool {
        LemmaPool {
            lemmas: Mutex::new(Vec::new()),
        }
    }

    /// Appends `batch`, silently truncating at [`LEMMA_POOL_CAP`] (the
    /// pool is advisory pruning; dropping a lemma costs only speed).
    fn publish(&self, batch: Vec<SharedLemma>) {
        if batch.is_empty() {
            return;
        }
        let mut pool = lock_unpoisoned(&self.lemmas);
        let room = LEMMA_POOL_CAP.saturating_sub(pool.len());
        pool.extend(batch.into_iter().take(room));
    }

    /// Returns every lemma published since the caller's cursor, advancing
    /// the cursor past them.
    fn fetch_after(&self, cursor: &mut usize) -> Vec<SharedLemma> {
        let pool = lock_unpoisoned(&self.lemmas);
        let fresh = pool[*cursor..].to_vec();
        *cursor = pool.len();
        fresh
    }
}

/// How a gate's good-circuit literal resolves under the static analysis.
#[derive(Clone, Copy, Debug)]
enum StaticAlias {
    /// The node is proved constant; alias the shared pinned literal.
    Constant(bool),
    /// The node is proved equal (`true`) or opposite (`false`) to its
    /// representative; alias the representative's literal.
    Rep(GateId, bool),
}

/// Sentinel in [`SharedCnf::var_slot`] for solver variables that do not
/// represent a gate's good-circuit value (activation/stuck/faulty-cone/
/// difference variables) — lemmas mentioning them are never shared.
const NO_SLOT: u32 = u32::MAX;

/// One worker's incremental classification context: good-circuit clauses
/// are encoded lazily, cone by cone, at most once per gate, and each
/// classified fault leaves only retired (permanently deactivated) cone
/// clauses behind. Lazy encoding matters on the carry-skip adders, where a
/// handful of survivors with small cones would otherwise pay for a
/// full-network CNF — and then solve against it.
pub(crate) struct SharedCnf<'n> {
    net: &'n Network,
    topo: &'n Topology,
    solver: Solver,
    /// Lazily-encoded good-circuit literal per gate slot; monotone across
    /// faults, so overlapping cones share clauses and learnt facts.
    good: Vec<Option<Lit>>,
    /// Statically proved merges/constants: merged nodes alias their
    /// representative's good literal instead of re-encoding their cone.
    analysis: Option<&'n StaticAnalysis<'n>>,
    /// Learned indirect implications seeded as clauses once both
    /// endpoints are encoded; `axiom_done` marks the seeded ones.
    axioms: Option<&'n Axioms>,
    axiom_done: Vec<bool>,
    /// A literal pinned true, lazily created for proved-constant nodes.
    const_true: Option<Lit>,
    /// Reverse map: solver variable index → the gate slot whose plain
    /// Tseitin encoding owns it, or [`NO_SLOT`]. The basis of lemma
    /// translation; kept in lockstep with the solver's allocator.
    var_slot: Vec<u32>,
    // Per-fault scratch, cleared after each query via `touched`.
    in_tfo: Vec<bool>,
    faulty_var: Vec<Option<Lit>>,
    touched: Vec<GateId>,
    visit: Vec<bool>,
    /// Certification accounting, `Some` iff the solver logs proofs: every
    /// redundancy verdict is certified eagerly against the cumulative
    /// shared proof stream, and only counters/digests are retained.
    certification: Option<CertificationReport>,
    /// Faults this context actually ran a decision procedure on (PODEM
    /// and/or SAT) — the faults no prescreen or drop settled.
    engine_calls: u64,
    /// Per-fault solver budget ([`ParallelOptions::fault_budget`]); an
    /// exhausted query degrades its fault to [`Testability::Unknown`].
    budget: Option<FaultBudget>,
}

impl<'n> SharedCnf<'n> {
    pub(crate) fn new(net: &'n Network, topo: &'n Topology) -> Self {
        SharedCnf::with_analysis(net, topo, None, None, false)
    }

    /// A context that aliases statically merged nodes to their
    /// representative's literal and pins proved constants. The merges are
    /// SAT-proved over all inputs, so the projection of every query onto
    /// the primary inputs — and with it the UNSAT verdicts and the
    /// lex-min canonical vectors — is unchanged; only the clause count
    /// shrinks.
    pub(crate) fn with_analysis(
        net: &'n Network,
        topo: &'n Topology,
        analysis: Option<&'n StaticAnalysis<'n>>,
        axioms: Option<&'n Axioms>,
        certify: bool,
    ) -> Self {
        assert!(
            !(certify && (analysis.is_some() || axioms.is_some())),
            "certified runs encode the plain circuit (no analysis aliasing, no axioms)"
        );
        let n = net.num_gate_slots();
        let mut solver = Solver::new();
        if certify {
            solver.enable_proof();
        }
        SharedCnf {
            net,
            topo,
            solver,
            good: vec![None; n],
            analysis,
            axiom_done: vec![false; axioms.map_or(0, |a| a.list.len())],
            axioms,
            const_true: None,
            var_slot: Vec::new(),
            in_tfo: vec![false; n],
            faulty_var: vec![None; n],
            touched: Vec::new(),
            visit: vec![false; n],
            certification: certify.then(CertificationReport::default),
            engine_calls: 0,
            budget: None,
        }
    }

    /// Allocates a solver variable, recording which gate slot (if any)
    /// owns it for lemma translation. Gate encodings may allocate
    /// internal variables behind our back (multi-input XOR chains), so
    /// the map is first padded with [`NO_SLOT`] up to the allocator.
    fn fresh_var(&mut self, slot: Option<GateId>) -> Lit {
        self.var_slot.resize(self.solver.num_vars(), NO_SLOT);
        let v = self.solver.new_var();
        self.var_slot
            .push(slot.map_or(NO_SLOT, |g| g.index() as u32));
        debug_assert_eq!(self.var_slot.len(), self.solver.num_vars());
        v.positive()
    }

    /// Turns on learnt-clause export for the sharing pool.
    fn enable_sharing(&mut self) {
        assert!(
            self.certification.is_none(),
            "lemma sharing is disabled under certification"
        );
        self.solver
            .enable_lemma_export(SHARED_LEMMA_MAX_LEN, SHARED_LEMMA_MAX_LBD);
    }

    /// Drains the solver's lemma outbox and translates each clause into
    /// slot space. A clause survives translation only if every literal's
    /// variable is a gate slot's good-circuit variable; such a clause is
    /// implied by the circuit's Tseitin clauses alone (every model of the
    /// worker's full formula restricted to gate variables extends from a
    /// circuit evaluation — fault-local clauses are all guarded by their
    /// retired activation literal), so it holds in every evaluation of
    /// the circuit and is safe for any other worker to import.
    fn export_shared(&mut self) -> Vec<SharedLemma> {
        self.var_slot.resize(self.solver.num_vars(), NO_SLOT);
        let mut out = Vec::new();
        'lemmas: for lemma in self.solver.take_exported_lemmas() {
            let mut t: SharedLemma = Vec::with_capacity(lemma.len());
            for l in lemma {
                let slot = self.var_slot[l.var().index()];
                if slot == NO_SLOT {
                    continue 'lemmas;
                }
                t.push((slot, l.is_positive()));
            }
            out.push(t);
        }
        out
    }

    /// Imports slot-space lemmas from other workers. A lemma is skipped
    /// (not deferred) unless every mentioned slot already has a
    /// good-circuit literal here — its full fanin cone is then encoded,
    /// so in every model of this formula the mentioned literals carry
    /// circuit-consistent values and the lemma cannot exclude a witness;
    /// verdicts and lex-min vectors are unchanged, only search shrinks.
    fn import_shared(&mut self, lemmas: &[SharedLemma]) {
        let mut buf: Vec<Lit> = Vec::new();
        'lemmas: for lemma in lemmas {
            buf.clear();
            for &(slot, phase) in lemma {
                let Some(l) = self.good[slot as usize] else {
                    continue 'lemmas;
                };
                buf.push(if phase { l } else { !l });
            }
            self.solver.import_lemma(&buf);
        }
    }

    /// A literal that is true in every model (unit-pinned on first use);
    /// proved-constant nodes alias it or its negation.
    fn const_true_lit(&mut self) -> Lit {
        if let Some(l) = self.const_true {
            return l;
        }
        let l = self.fresh_var(None);
        self.solver.add_clause(&[l]);
        self.const_true = Some(l);
        l
    }

    /// The static resolution of `g`, if the analysis proved it constant
    /// or merged it into a representative (representatives are fully
    /// resolved: never themselves merged or constant).
    fn static_alias(&self, g: GateId) -> Option<StaticAlias> {
        let an = self.analysis?;
        if let Some(c) = an.node_constant(g) {
            return Some(StaticAlias::Constant(c));
        }
        if let Some((r, same)) = an.node_rep(g) {
            return Some(StaticAlias::Rep(r, same));
        }
        None
    }

    /// Seeds every not-yet-added axiom touching one of `gates` whose
    /// endpoints are both encoded. Called whenever good literals are
    /// assigned, so an axiom lands in the solver exactly when (and only
    /// when) the clause is expressible.
    fn seed_axioms(&mut self, gates: &[GateId]) {
        let Some(ax) = self.axioms else {
            return;
        };
        for &g in gates {
            for &ai in &ax.by_gate[g.index()] {
                let ai = ai as usize;
                if self.axiom_done[ai] {
                    continue;
                }
                let ((a, va), (b, vb)) = ax.list[ai];
                let (Some(la), Some(lb)) = (self.good[a.index()], self.good[b.index()]) else {
                    continue;
                };
                self.axiom_done[ai] = true;
                let la = if va { la } else { !la };
                let lb = if vb { lb } else { !lb };
                self.solver.add_implication(la, lb);
            }
        }
    }

    /// The good-circuit literal for `g`, encoding its transitive fanin on
    /// first use. Gates already encoded by an earlier fault's cone are
    /// reused, so across a whole classification run each gate is encoded
    /// at most once — the "encode once per network state" contract, paid
    /// only for the parts of the network the hard faults actually touch.
    fn good_lit(&mut self, g: GateId) -> Lit {
        if let Some(l) = self.good[g.index()] {
            return l;
        }
        match self.static_alias(g) {
            Some(StaticAlias::Constant(c)) => {
                let t = self.const_true_lit();
                let l = if c { t } else { !t };
                self.good[g.index()] = Some(l);
                self.seed_axioms(&[g]);
                return l;
            }
            Some(StaticAlias::Rep(r, same)) => {
                let rl = self.good_lit(r);
                let l = if same { rl } else { !rl };
                self.good[g.index()] = Some(l);
                self.seed_axioms(&[g]);
                return l;
            }
            None => {}
        }
        // Collect the un-encoded transitive fanin, then encode it in
        // topological order so every pin literal exists before its gate.
        // Statically aliased fanins resolve to their representative (the
        // representative itself joins the plain-encode set).
        let mut need: Vec<GateId> = Vec::new();
        let mut aliased: Vec<GateId> = Vec::new();
        let mut stack = vec![g];
        while let Some(id) = stack.pop() {
            let i = id.index();
            if self.visit[i] || self.good[i].is_some() {
                continue;
            }
            self.visit[i] = true;
            match self.static_alias(id) {
                Some(StaticAlias::Constant(_)) => aliased.push(id),
                Some(StaticAlias::Rep(r, _)) => {
                    aliased.push(id);
                    stack.push(r);
                }
                None => {
                    need.push(id);
                    for p in &self.net.gate(id).pins {
                        stack.push(p.src);
                    }
                }
            }
        }
        // Constants first: they need no fanin. Representative-aliased
        // nodes resolve after the plain set is encoded.
        for &id in &aliased {
            if let Some(StaticAlias::Constant(c)) = self.static_alias(id) {
                self.visit[id.index()] = false;
                let t = self.const_true_lit();
                self.good[id.index()] = Some(if c { t } else { !t });
            }
        }
        need.sort_unstable_by_key(|&id| self.topo.pos(id));
        for &id in &need {
            self.visit[id.index()] = false;
            let gate = self.net.gate(id);
            let out = self.fresh_var(Some(id));
            match gate.kind {
                GateKind::Input => {}
                GateKind::Const(b) => {
                    self.solver.add_clause(&[if b { out } else { !out }]);
                }
                _ => {
                    let pins: Vec<Lit> = gate
                        .pins
                        .iter()
                        .map(|p| {
                            if let Some(l) = self.good[p.src.index()] {
                                l
                            } else {
                                // The pin is rep-aliased and its
                                // representative is already encoded.
                                let (r, same) = match self.static_alias(p.src) {
                                    Some(StaticAlias::Rep(r, same)) => (r, same),
                                    _ => unreachable!("unencoded fanin must be rep-aliased"),
                                };
                                let rl = self.good[r.index()].expect("rep encoded first");
                                if same {
                                    rl
                                } else {
                                    !rl
                                }
                            }
                        })
                        .collect();
                    encode_gate_with_guard(&mut self.solver, gate.kind, out, &pins, None);
                }
            }
            self.good[id.index()] = Some(out);
        }
        for &id in &aliased {
            if let Some(StaticAlias::Rep(r, same)) = self.static_alias(id) {
                self.visit[id.index()] = false;
                let rl = self.good[r.index()].expect("rep encoded first");
                self.good[id.index()] = Some(if same { rl } else { !rl });
            }
        }
        if self.axioms.is_some() && !(need.is_empty() && aliased.is_empty()) {
            need.extend_from_slice(&aliased);
            self.seed_axioms(&need);
        }
        self.good[g.index()].expect("just encoded")
    }

    /// Classifies one fault. Without a [`FaultBudget`] the verdict is
    /// never [`Testability::Unknown`] and is a pure function of
    /// `(network, fault)` — query order cannot change it:
    ///
    /// * a budgeted PODEM run goes first (deterministic search, `X`s in
    ///   its cube filled as 0 — canonical by construction) and settles
    ///   most testable faults without touching the solver;
    /// * PODEM aborts fall through to an incremental query on the shared
    ///   CNF under the fault's activation literal. UNSAT is a semantic
    ///   verdict; a SAT model is canonicalized to the lexicographically
    ///   smallest detecting assignment, erasing any dependence on the
    ///   learnt clauses this solver happens to carry.
    pub(crate) fn classify(&mut self, fault: Fault) -> Testability {
        self.engine_calls += 1;
        let result = podem(self.net, fault, PODEM_BUDGET);
        match result.test_vector() {
            Some(t) => Testability::Testable(t),
            // In certify mode PODEM's redundancy verdicts (decision-tree
            // exhaustion — no extractable proof object) are re-derived as
            // incremental UNSAT queries so they too come with a checkable
            // certificate. The verdicts are semantic, so nothing changes
            // but the cost.
            None if result == PodemResult::Redundant && self.certification.is_none() => {
                Testability::Redundant
            }
            None => self.classify_sat(fault),
        }
    }

    /// The shared-CNF decision procedure behind [`SharedCnf::classify`].
    fn classify_sat(&mut self, fault: Fault) -> Testability {
        let net = self.net;
        // Faulty region: the transitive fanout of the perturbed gate.
        let mut stack: Vec<GateId> = vec![fault.observing_gate()];
        while let Some(g) = stack.pop() {
            let gi = g.index();
            if self.in_tfo[gi] {
                continue;
            }
            self.in_tfo[gi] = true;
            self.touched.push(g);
            for c in self.topo.fanouts(g) {
                stack.push(c.gate);
            }
        }
        if !net.outputs().iter().any(|o| self.in_tfo[o.src.index()]) && self.certification.is_none()
        {
            // Effect cannot reach any PO. Under certification the shortcut
            // is not taken: the encoding below then has an empty difference
            // disjunction, so the query is UNSAT with core `{act}` and the
            // structural argument becomes an ordinary certificate.
            self.clear_scratch();
            return Testability::Redundant;
        }

        // Activation literal: the fault's clauses hold only under `act`.
        let act = self.fresh_var(None);
        // `stuck` equals the stuck-at value (fresh var pinned by a unit).
        let stuck = {
            let v = self.fresh_var(None);
            let pinned = if fault.stuck { v } else { !v };
            self.solver.add_clause(&[pinned]);
            v
        };
        // The cone in topological order (the TFO walk above pushes in
        // DFS order; faulty gates must see their faulty fanins first).
        self.touched.sort_unstable_by_key(|&g| self.topo.pos(g));
        for t in 0..self.touched.len() {
            let id = self.touched[t];
            if fault.site == FaultSite::GateOutput(id) {
                self.faulty_var[id.index()] = Some(stuck);
                continue;
            }
            let n_pins = net.gate(id).pins.len();
            // Faulty var inside the TFO, shared good var outside (encoded
            // on demand); the faulted connection reads the stuck literal.
            let mut pins: Vec<Lit> = Vec::with_capacity(n_pins);
            for pi in 0..n_pins {
                let src = net.gate(id).pins[pi].src;
                let faulty = self.faulty_var[src.index()];
                pins.push(if fault.site == FaultSite::Conn(ConnRef::new(id, pi)) {
                    stuck
                } else if let Some(l) = faulty {
                    l
                } else {
                    self.good_lit(src)
                });
            }
            let out = self.fresh_var(None);
            let g = net.gate(id);
            encode_gate_with_guard(&mut self.solver, g.kind, out, &pins, Some(act));
            self.faulty_var[id.index()] = Some(out);
        }

        // Under `act`, some affected output must differ.
        let mut diffs: Vec<Lit> = vec![!act];
        for o in net.outputs() {
            let src = o.src;
            if !self.in_tfo[src.index()] {
                continue;
            }
            let Some(fl) = self.faulty_var[src.index()] else {
                continue;
            };
            let gl = self.good_lit(src);
            let d = self.fresh_var(None);
            self.solver.add_clause(&[!act, !d, gl, fl]);
            self.solver.add_clause(&[!act, !d, !gl, !fl]);
            self.solver.add_clause(&[!act, d, !gl, fl]);
            self.solver.add_clause(&[!act, d, gl, !fl]);
            diffs.push(d);
        }
        self.clear_scratch();
        if self.certification.is_none() && (diffs.len() == 1 || !self.solver.add_clause(&diffs)) {
            self.retire(act);
            return Testability::Redundant;
        }
        if self.certification.is_some() {
            // Always pose the clause and the query, even when `diffs` is
            // just `¬act` (no observable difference is encodable): the
            // solver then answers UNSAT with an assumption core, and every
            // structural shortcut above becomes a checkable proof.
            self.solver.add_clause(&diffs);
        }
        let budget = self
            .budget
            .map_or_else(Budget::unlimited, FaultBudget::to_budget);
        let verdict = match self.solver.solve_budgeted(&[act], &budget) {
            SatResult::Unsat => {
                self.certify_redundant(fault, act);
                Testability::Redundant
            }
            SatResult::Sat => match self.lex_min_inputs(act, &budget) {
                Ok(bits) => Testability::Testable(bits),
                // SAT proved a test exists, but canonicalization ran out
                // of budget. Reporting the raw model would leak the
                // worker's learnt-clause history into the report, so the
                // fault degrades to Unknown instead.
                Err(r) => Testability::Unknown(r.into()),
            },
            // Budget exhausted (or an injected abort): degrade, don't
            // block. The activation literal is still retired below, so
            // the context stays consistent for the next fault.
            SatResult::Aborted(r) => Testability::Unknown(r.into()),
        };
        self.retire(act);
        verdict
    }

    /// Under certification, checks the proof of the UNSAT verdict the
    /// solver just produced for `fault` (assumption `act`) against the
    /// cumulative shared proof stream, recording the outcome.
    fn certify_redundant(&mut self, fault: Fault, act: Lit) {
        let Some(report) = self.certification.as_mut() else {
            return;
        };
        let conclusion = core_conclusion(self.solver.unsat_core());
        let assumptions = [act];
        let cert = Certificate::from_solver(&self.solver, &assumptions, &conclusion)
            .expect("certify mode logs proofs");
        kms_proof::certify(report, &format!("atpg {fault}"), &cert);
    }

    /// The lexicographically smallest satisfying primary-input assignment
    /// under `act`: pin each input to 0 in order, backing off to 1 exactly
    /// when 0 is infeasible. At most one solve per input, each incremental.
    /// Inputs outside every cone encoded so far have no CNF variable and
    /// are canonically 0 — the same bit pinning them would yield, since an
    /// input outside the miter's support can never force UNSAT. Either way
    /// the vector is a pure function of `(network, fault)`. Each pinning
    /// query gets the full `budget` allowance; exhaustion surfaces as
    /// `Err` and the caller degrades the fault to `Unknown`.
    fn lex_min_inputs(
        &mut self,
        act: Lit,
        budget: &Budget,
    ) -> Result<Vec<bool>, kms_sat::AbortReason> {
        let mut assume: Vec<Lit> = Vec::with_capacity(self.net.inputs().len() + 1);
        assume.push(act);
        let mut bits = Vec::with_capacity(self.net.inputs().len());
        for &inp in self.net.inputs() {
            let Some(l) = self.good[inp.index()] else {
                bits.push(false);
                continue;
            };
            assume.push(!l);
            match self.solver.solve_budgeted(&assume, budget) {
                SatResult::Unsat => {
                    assume.pop();
                    assume.push(l);
                    bits.push(true);
                }
                SatResult::Sat => bits.push(false),
                SatResult::Aborted(r) => return Err(r),
            }
        }
        Ok(bits)
    }

    /// Permanently deactivates a fault's clauses after its query.
    fn retire(&mut self, act: Lit) {
        self.solver.add_clause(&[!act]);
    }

    fn clear_scratch(&mut self) {
        for &g in &self.touched {
            self.in_tfo[g.index()] = false;
            self.faulty_var[g.index()] = None;
        }
        self.touched.clear();
    }
}

/// Classifies one fault via a throwaway shared context (the
/// [`crate::Engine::SharedSat`] path of [`crate::is_testable`]).
pub(crate) fn classify_one(net: &Network, fault: Fault) -> Testability {
    let topo = Topology::build(net);
    SharedCnf::new(net, &topo).classify(fault)
}

/// Classifies every fault with the shared-CNF engine: random-pattern
/// pre-screen, per-fault incremental SAT, dynamic fault-dropping, and a
/// worker pool of `opts.jobs` threads. The report is identical for every
/// `jobs` value (see the module docs for why).
pub fn classify_faults(
    net: &Network,
    faults: Vec<Fault>,
    opts: ParallelOptions,
) -> TestabilityReport {
    classify_faults_report(net, faults, opts).testability
}

/// As [`classify_faults`], but also returns the aggregated solver
/// counters and (under [`ParallelOptions::certify`]) the certification
/// accounting for every redundancy proof.
pub fn classify_faults_report(
    net: &Network,
    faults: Vec<Fault>,
    opts: ParallelOptions,
) -> ClassifyReport {
    let outcome = run(net, &faults, opts, &[], true, false);
    // A healthy run decides every slot. A slot still `None` means its
    // worker died before the panic shield could park a verdict for it;
    // the report degrades such slots to `Unknown` rather than panicking
    // over an already-contained failure.
    let verdicts = outcome
        .verdicts
        .into_iter()
        .map(|v| v.unwrap_or(Testability::Unknown(UnknownReason::WorkerPanic)))
        .collect();
    ClassifyReport {
        testability: TestabilityReport { faults, verdicts },
        solver: outcome.solver,
        engine_calls: outcome.engine_calls,
        certification: outcome.certification,
    }
}

/// Finds the first redundant fault in `faults` order, pre-screening with
/// `cached_tests` (no fresh random patterns) and stopping the worker pool
/// as soon as the in-order commit hits a redundancy. Because no test
/// vector can ever detect a redundant fault, pre-screening and dropping
/// never change *which* fault is reported — only how much SAT work finding
/// it costs.
pub fn scan_for_redundancy(
    net: &Network,
    faults: &[Fault],
    opts: ParallelOptions,
    cached_tests: &[Vec<bool>],
) -> RedundancyScan {
    let outcome = run(net, faults, opts, cached_tests, false, true);
    let unknown = outcome
        .verdicts
        .iter()
        .filter(|v| matches!(v, Some(v) if v.is_unknown()))
        .count();
    RedundancyScan {
        redundant: outcome.first_redundant.map(|i| faults[i]),
        tests: outcome.sat_tests,
        solver: outcome.solver,
        engine_calls: outcome.engine_calls,
        certification: outcome.certification,
        unknown,
    }
}

struct Outcome {
    verdicts: Vec<Option<Testability>>,
    first_redundant: Option<usize>,
    sat_tests: Vec<Vec<bool>>,
    solver: Stats,
    certification: Option<CertificationReport>,
    engine_calls: u64,
}

/// A worker's message for survivor slot `k`: a speculative verdict, or a
/// note that the slot was already drop-marked when the worker reached it.
enum WorkerMsg {
    Verdict(Testability),
    Skipped,
}

fn run(
    net: &Network,
    faults: &[Fault],
    opts: ParallelOptions,
    prescreen: &[Vec<bool>],
    with_random: bool,
    stop_at_redundant: bool,
) -> Outcome {
    let jobs = opts.effective_jobs();
    let topo = Topology::build(net);
    let mut tests: Vec<Vec<bool>> = prescreen.to_vec();
    if with_random && opts.drop_patterns > 0 {
        tests.extend(random_tests(net, opts.drop_patterns, opts.seed));
    }
    let mut verdicts: Vec<Option<Testability>> = vec![None; faults.len()];
    if !tests.is_empty() {
        let coverage = fault_simulate_cone_jobs_with(net, &topo, faults, &tests, jobs);
        for (slot, hit) in verdicts.iter_mut().zip(&coverage.detected_by) {
            if let Some(ti) = hit {
                *slot = Some(Testability::Testable(tests[*ti].clone()));
            }
        }
    }
    let survivors: Vec<usize> = (0..faults.len())
        .filter(|&i| verdicts[i].is_none())
        .collect();
    let mut outcome = Outcome {
        verdicts,
        first_redundant: None,
        sat_tests: Vec::new(),
        solver: Stats::default(),
        certification: opts.certify.then(CertificationReport::default),
        engine_calls: 0,
    };
    if survivors.is_empty() {
        return outcome;
    }
    // Static prescreen: one analysis pass proves a slice of the survivors
    // untestable with no PODEM/SAT query at all, and its merge classes let
    // every worker alias duplicate good-circuit cones. Both substitutions
    // are semantic, so the verdicts — and hence the drop cascade and the
    // final report — match a run without the prescreen bit for bit.
    let prescreen = Prescreen::build(net, faults, &survivors, &opts);
    if jobs.min(survivors.len()) <= 1 {
        run_sequential(
            net,
            &topo,
            faults,
            &survivors,
            &prescreen,
            opts.certify,
            opts.fault_budget,
            stop_at_redundant,
            &mut outcome,
        );
    } else {
        run_parallel(
            net,
            &topo,
            faults,
            &survivors,
            &prescreen,
            jobs.min(survivors.len()),
            opts.certify,
            opts.fault_budget,
            stop_at_redundant,
            &mut outcome,
        );
    }
    outcome
}

/// The static-prescreen state shared by the sequential and parallel runs:
/// the analysis pass (workers alias merged/constant nodes through it when
/// encoding good-circuit cones) and the per-fault statically-proved flags.
struct Prescreen<'n> {
    analysis: Option<StaticAnalysis<'n>>,
    redundant: Vec<bool>,
    /// Indirect implications from the dataflow tier, seeded into every
    /// worker's solver as the survivors' cones are encoded.
    axioms: Option<Axioms>,
}

impl<'n> Prescreen<'n> {
    fn build(
        net: &'n Network,
        faults: &[Fault],
        survivors: &[usize],
        opts: &ParallelOptions,
    ) -> Prescreen<'n> {
        // The first tier is implication-only: structural hashing plus
        // static learning, no SAT sweep (see `ParallelOptions::
        // prescreen_sweep` for the measurement behind the default).
        // Certified runs skip the pass entirely: its verdicts have no
        // per-fault proof object and its merge-aliasing would make every
        // certificate conditional on the analysis being right, so each
        // fault instead gets a full SAT query over the plain encoding.
        let analysis = (opts.static_prescreen && !opts.certify).then(|| {
            let aopts = AnalysisOptions {
                sat_sweep: opts.prescreen_sweep,
                ..AnalysisOptions::default()
            };
            StaticAnalysis::build(net, &aopts)
        });
        let mut redundant = vec![false; faults.len()];
        let mut axioms = None;
        if let Some(an) = &analysis {
            for &fi in survivors {
                let f = faults[fi];
                let site = match f.site {
                    FaultSite::GateOutput(g) => FaultRef::Output(g),
                    FaultSite::Conn(c) => FaultRef::Conn(c),
                };
                redundant[fi] = an.prove_untestable(site, f.stuck).is_some();
            }
            // Second tier: the dataflow pass (ternary/cofactor constants,
            // CODCs, recursive learning) decides implication-unproved
            // survivors and contributes its learned indirect implications
            // as worker axioms. All its verdicts carry replayable
            // witnesses (see `kms-dataflow`), so the substitution stays
            // semantic and the report bit-identical.
            if opts.prescreen_dataflow {
                let df = DataflowAnalysis::build(net, an, &DataflowOptions::default());
                for &fi in survivors {
                    if redundant[fi] {
                        continue;
                    }
                    let f = faults[fi];
                    let site = match f.site {
                        FaultSite::GateOutput(g) => FaultRef::Output(g),
                        FaultSite::Conn(c) => FaultRef::Conn(c),
                    };
                    redundant[fi] = df.prove_untestable(an, site, f.stuck).is_some();
                }
                axioms = Some(Axioms::build(net, df.learned_implications()));
            }
        }
        Prescreen {
            analysis,
            redundant,
            axioms,
        }
    }
}

/// The in-order commit state shared by the sequential and parallel runs:
/// resolves survivor slots strictly in fault-list order and runs the
/// batched drop cascade. Everything here is a function of slot order and
/// the canonical per-fault verdicts, so the sequential path and any
/// worker-pool schedule produce bit-identical outcomes.
struct Committer<'s> {
    net: &'s Network,
    topo: &'s Topology,
    faults: &'s [Fault],
    survivors: &'s [usize],
    stop_at_redundant: bool,
    /// Committed vectors not yet flushed across the undecided survivors,
    /// in commit order.
    pending: Vec<Vec<bool>>,
    /// Incremental checker over **all** committed vectors: per-slot drop
    /// checks are one cone walk against cached good values instead of a
    /// fresh pack-and-simulate per slot.
    sim: ConeSim<'s>,
    /// Advisory per-survivor drop flags read by pool workers (set at
    /// flush time, after the verdict is recorded); `None` in-line.
    dropped: Option<&'s [AtomicBool]>,
    /// Committed detecting vectors, republished for the workers' own
    /// pre-solve drop checks; `None` in-line.
    log: Option<&'s CommitLog>,
}

impl<'s> Committer<'s> {
    /// Resolves survivor slot `k`. `verdict` is consulted only if no
    /// committed vector already detects the fault (so the sequential
    /// caller can pass the classification itself as the closure and skip
    /// the solve entirely on a drop). Returns `true` when the run is done
    /// (first redundancy committed in stop mode).
    fn resolve(
        &mut self,
        k: usize,
        outcome: &mut Outcome,
        verdict: impl FnOnce() -> Testability,
    ) -> bool {
        let fi = self.survivors[k];
        if outcome.verdicts[fi].is_some() {
            return false; // decided by an earlier flush
        }
        if !self.pending.is_empty() {
            // Drop check, word-parallel over the committed vectors. The
            // checker scans all of them, but for an undecided slot the
            // earliest detecting vector is necessarily still pending:
            // every flushed vector was already simulated across this slot
            // at flush time and would have decided it. So the credit —
            // the first detecting vector in commit order — is exactly
            // what an eager per-vector cascade would assign.
            if let Some(ti) = self.sim.first_detecting(self.faults[fi]) {
                outcome.verdicts[fi] = Some(Testability::Testable(self.sim.test(ti).to_vec()));
                return false;
            }
        }
        match verdict() {
            Testability::Redundant => {
                outcome.verdicts[fi] = Some(Testability::Redundant);
                if self.stop_at_redundant {
                    outcome.first_redundant = Some(fi);
                    return true;
                }
            }
            Testability::Testable(t) => {
                if let Some(log) = self.log {
                    log.publish(&t);
                }
                self.sim.push(&t);
                outcome.sat_tests.push(t.clone());
                self.pending.push(t.clone());
                outcome.verdicts[fi] = Some(Testability::Testable(t));
                if self.pending.len() >= DROP_FLUSH {
                    self.flush(k, outcome);
                }
            }
            Testability::Unknown(r) => {
                // Budget exhaustion or an isolated worker panic: commit
                // the Unknown in slot order. No vector is published and
                // the drop cascade is untouched, so every other slot's
                // verdict is exactly what it would have been.
                outcome.verdicts[fi] = Some(Testability::Unknown(r));
            }
        }
        false
    }

    /// Simulates the pending batch against every undecided later
    /// survivor, crediting each hit to its earliest detecting vector and
    /// raising the advisory drop flags workers skip by.
    fn flush(&mut self, k: usize, outcome: &mut Outcome) {
        let undecided: Vec<(usize, usize)> = self
            .survivors
            .iter()
            .enumerate()
            .skip(k + 1)
            .filter(|(_, &fi)| outcome.verdicts[fi].is_none())
            .map(|(slot, &fi)| (slot, fi))
            .collect();
        if !undecided.is_empty() {
            let sub: Vec<Fault> = undecided.iter().map(|&(_, fi)| self.faults[fi]).collect();
            let cov = fault_simulate_cone_with(self.net, self.topo, &sub, &self.pending);
            for (&(slot, fi), hit) in undecided.iter().zip(&cov.detected_by) {
                if let Some(ti) = *hit {
                    outcome.verdicts[fi] = Some(Testability::Testable(self.pending[ti].clone()));
                    if let Some(flags) = self.dropped {
                        flags[slot].store(true, Ordering::Release);
                    }
                }
            }
        }
        self.pending.clear();
    }
}

/// Counters salvaged from contexts a panic shield had to discard: a
/// panicked worker's solver may be mid-encode (half a cone's clauses,
/// dangling activation literal), so only its diagnostics are kept and
/// the context itself is rebuilt from scratch.
#[derive(Default)]
struct LostWork {
    solver: Stats,
    engine_calls: u64,
    certification: Option<CertificationReport>,
}

impl LostWork {
    /// Folds `ctx`'s counters in before the caller rebuilds it.
    fn salvage(&mut self, ctx: &mut SharedCnf<'_>) {
        self.solver.merge(&ctx.solver.stats());
        self.engine_calls += ctx.engine_calls;
        if let Some(mine) = ctx.certification.take() {
            self.certification
                .get_or_insert_with(CertificationReport::default)
                .merge(&mine);
        }
    }
}

/// Runs one classification behind a panic shield. A panic — injected by
/// the chaos hooks or a genuine bug in one fault's query — degrades that
/// fault to [`Testability::Unknown`] instead of killing the run: the
/// context may be mid-encode when it unwinds, so its counters are
/// salvaged into `lost` and the context is rebuilt for the next fault.
fn classify_isolated<'n>(
    ctx: &mut SharedCnf<'n>,
    fault: Fault,
    rebuild: impl Fn() -> SharedCnf<'n>,
    lost: &mut LostWork,
) -> Testability {
    match catch_unwind(AssertUnwindSafe(|| ctx.classify(fault))) {
        Ok(v) => v,
        Err(_) => {
            lost.salvage(ctx);
            *ctx = rebuild();
            Testability::Unknown(UnknownReason::WorkerPanic)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sequential(
    net: &Network,
    topo: &Topology,
    faults: &[Fault],
    survivors: &[usize],
    prescreen: &Prescreen<'_>,
    certify: bool,
    budget: Option<FaultBudget>,
    stop_at_redundant: bool,
    outcome: &mut Outcome,
) {
    let rebuild = || {
        let mut ctx = SharedCnf::with_analysis(
            net,
            topo,
            prescreen.analysis.as_ref(),
            prescreen.axioms.as_ref(),
            certify,
        );
        ctx.budget = budget;
        ctx
    };
    let mut ctx = rebuild();
    let mut lost = LostWork::default();
    let mut committer = Committer {
        net,
        topo,
        faults,
        survivors,
        stop_at_redundant,
        pending: Vec::new(),
        sim: ConeSim::new(net, topo),
        dropped: None,
        log: None,
    };
    for (k, &fi) in survivors.iter().enumerate() {
        let done = committer.resolve(k, outcome, || {
            if prescreen.redundant[fi] {
                Testability::Redundant
            } else {
                classify_isolated(&mut ctx, faults[fi], rebuild, &mut lost)
            }
        });
        if done {
            break;
        }
    }
    outcome.solver.merge(&ctx.solver.stats());
    outcome.solver.merge(&lost.solver);
    outcome.engine_calls += ctx.engine_calls + lost.engine_calls;
    if let Some(total) = outcome.certification.as_mut() {
        if let Some(mine) = ctx.certification.take() {
            total.merge(&mine);
        }
        if let Some(mine) = lost.certification.take() {
            total.merge(&mine);
        }
    }
}

/// The shared in-order commit state of [`run_parallel`], held under one
/// mutex. There is **no dedicated committer thread**: whichever worker
/// completes the frontier chunk drains the in-order prefix inside a short
/// critical section. On an oversubscribed machine this is what keeps the
/// pool cheap — a worker commits its own chunk in its own timeslice
/// instead of context-switching to a starved committer thread per chunk.
struct CommitState<'o, 's> {
    committer: Committer<'s>,
    outcome: &'o mut Outcome,
    /// Completed chunks waiting for their turn, by chunk index.
    parked: BTreeMap<usize, Vec<(usize, WorkerMsg)>>,
    /// Chunks fully committed so far (the commit frontier).
    frontier: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_parallel(
    net: &Network,
    topo: &Topology,
    faults: &[Fault],
    survivors: &[usize],
    prescreen: &Prescreen<'_>,
    jobs: usize,
    certify: bool,
    budget: Option<FaultBudget>,
    stop_at_redundant: bool,
    outcome: &mut Outcome,
) {
    let n = survivors.len();
    // Chunks are deliberately small: a commit is one short critical
    // section, and the chunk is the unit of *speculation* — a worker can
    // be at most `pace` chunks ahead of the commit frontier, so the chunk
    // size bounds how many solves can be wasted on faults the drop
    // cascade would have settled.
    let chunk = (n / (jobs * 64)).clamp(1, 8);
    let num_chunks = n.div_ceil(chunk);
    // Workers park once they run `pace` chunks past the commit frontier.
    // On an idle multi-core machine the commit work is an order of
    // magnitude cheaper than a solve, so the window rarely binds; on an
    // oversubscribed one it is what keeps the pool from racing through
    // the whole fault list speculatively before a single drop vector has
    // been committed.
    let pace = jobs + 1;
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // Advisory per-survivor drop flags: workers skip flagged slots; the
    // flush under the commit lock is the only writer, so a stale read
    // merely wastes a solve.
    let dropped: Vec<AtomicBool> = survivors.iter().map(|_| AtomicBool::new(false)).collect();
    let log = CommitLog::new();
    let pool = (!certify).then(LemmaPool::new);
    let state = Mutex::new(CommitState {
        committer: Committer {
            net,
            topo,
            faults,
            survivors,
            stop_at_redundant,
            pending: Vec::new(),
            sim: ConeSim::new(net, topo),
            dropped: Some(&dropped),
            log: Some(&log),
        },
        outcome,
        parked: BTreeMap::new(),
        frontier: 0,
    });
    // Signalled on every frontier advance and on stop, so paced-out
    // workers park instead of spinning (a spinning worker on an
    // oversubscribed machine steals the very cycles the frontier chunk's
    // owner needs to finish).
    let frontier_cv = Condvar::new();
    // Each worker folds its solver counters and certification accounting
    // in here as it exits; verdicts themselves still travel the in-order
    // commit path, so the diagnostics never influence the report.
    let agg: Mutex<(Stats, CertificationReport, u64)> = Mutex::new(Default::default());
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let (next, stop, state, frontier_cv) = (&next, &stop, &state, &frontier_cv);
            let (dropped, agg, pool, log) = (&dropped, &agg, &pool, &log);
            s.spawn(move || {
                let rebuild = || {
                    let mut ctx = SharedCnf::with_analysis(
                        net,
                        topo,
                        prescreen.analysis.as_ref(),
                        prescreen.axioms.as_ref(),
                        certify,
                    );
                    if pool.is_some() {
                        ctx.enable_sharing();
                    }
                    ctx.budget = budget;
                    ctx
                };
                let mut ctx = rebuild();
                let mut lost = LostWork::default();
                let mut cursor = 0usize;
                let mut vec_cursor = 0usize;
                let mut sim = ConeSim::new(net, topo);
                'claims: loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    let lo = c * chunk;
                    if lo >= n || stop.load(Ordering::Acquire) {
                        break;
                    }
                    // Pacing: a chunk more than `pace` ahead of the commit
                    // frontier waits its turn. Deadlock-free: every chunk
                    // below a waiting one is already claimed, and its
                    // claimant is inside the window, hence running (and
                    // whoever sets `stop` wakes all waiters).
                    {
                        let mut st = lock_unpoisoned(state);
                        while c >= st.frontier + pace && !stop.load(Ordering::Acquire) {
                            st = frontier_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                    if stop.load(Ordering::Acquire) {
                        break 'claims;
                    }
                    if let Some(pool) = pool {
                        let fresh = pool.fetch_after(&mut cursor);
                        ctx.import_shared(&fresh);
                    }
                    for v in log.fetch_after(&mut vec_cursor) {
                        sim.push(&v);
                    }
                    let hi = (lo + chunk).min(n);
                    // Chunk-level panic shield: a worker that dies here
                    // (the chaos hook fires, or a bug unwinds past the
                    // per-fault shield) must not strand its claimed chunk
                    // below the commit frontier — that would hang every
                    // paced-out peer. Whatever the shield cannot salvage
                    // is parked as `Unknown`, so the frontier keeps
                    // advancing and the report degrades instead of
                    // corrupting.
                    let shield = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(feature = "fault-inject")]
                        crate::chaos::check_chunk_claim();
                        let mut batch: Vec<(usize, WorkerMsg)> = Vec::with_capacity(hi - lo);
                        for k in lo..hi {
                            // A claimed chunk abandoned on `stop` is never
                            // missed: `stop` means the run is decided and
                            // the remaining chunks are irrelevant.
                            if stop.load(Ordering::Acquire) {
                                return (batch, true);
                            }
                            let fi = survivors[k];
                            let msg = if dropped[k].load(Ordering::Acquire) {
                                WorkerMsg::Skipped
                            } else if prescreen.redundant[fi] {
                                WorkerMsg::Verdict(Testability::Redundant)
                            } else if !sim.is_empty() && sim.first_detecting(faults[fi]).is_some() {
                                // A committed vector already detects this
                                // fault, so the in-order drop check is
                                // guaranteed to decide the slot.
                                WorkerMsg::Skipped
                            } else {
                                WorkerMsg::Verdict(classify_isolated(
                                    &mut ctx, faults[fi], rebuild, &mut lost,
                                ))
                            };
                            batch.push((k, msg));
                        }
                        (batch, false)
                    }));
                    let batch = match shield {
                        Ok((_, true)) => break 'claims,
                        Ok((batch, false)) => batch,
                        Err(_) => {
                            // The whole chunk degrades: any verdicts the
                            // worker had computed unwound with it.
                            lost.salvage(&mut ctx);
                            ctx = rebuild();
                            (lo..hi)
                                .map(|k| {
                                    let v = Testability::Unknown(UnknownReason::WorkerPanic);
                                    (k, WorkerMsg::Verdict(v))
                                })
                                .collect()
                        }
                    };
                    if let Some(pool) = pool {
                        pool.publish(ctx.export_shared());
                    }
                    // Cooperative in-order commit: park the finished chunk
                    // and drain every consecutive chunk from the frontier
                    // on — usually just this one, in this worker's own
                    // timeslice.
                    let mut st = lock_unpoisoned(state);
                    st.parked.insert(c, batch);
                    while let Some(b) = {
                        let f = st.frontier;
                        st.parked.remove(&f)
                    } {
                        for (k, msg) in b {
                            let st = &mut *st;
                            let done = match msg {
                                WorkerMsg::Verdict(v) => st.committer.resolve(k, st.outcome, || v),
                                // Skipped: this slot's drop flag was up, or
                                // a committed vector detects the fault —
                                // committed for an earlier slot, so the
                                // in-order drop check re-derives the
                                // verdict and the closure can never run.
                                WorkerMsg::Skipped => st.committer.resolve(k, st.outcome, || {
                                    unreachable!(
                                        "a skipped slot is always decided by an earlier vector"
                                    )
                                }),
                            };
                            if done {
                                stop.store(true, Ordering::Release);
                                // Waiters are either parked or holding the
                                // commit lock (about to re-check `stop`),
                                // so this wakeup cannot be lost.
                                frontier_cv.notify_all();
                                break 'claims;
                            }
                        }
                        st.frontier += 1;
                        frontier_cv.notify_all();
                    }
                }
                let mut total = lock_unpoisoned(agg);
                total.0.merge(&ctx.solver.stats());
                total.0.merge(&lost.solver);
                total.2 += ctx.engine_calls + lost.engine_calls;
                if let Some(mine) = ctx.certification.take() {
                    total.1.merge(&mine);
                }
                if let Some(mine) = lost.certification.take() {
                    total.1.merge(&mine);
                }
            });
        }
    });
    let (stats, certs, engine_calls) = agg.into_inner().unwrap_or_else(PoisonError::into_inner);
    let st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    debug_assert!(
        stop.load(Ordering::Acquire) || st.frontier == num_chunks,
        "every chunk commits unless the run stopped early"
    );
    let outcome = st.outcome;
    outcome.solver.merge(&stats);
    outcome.engine_calls += engine_calls;
    if let Some(total) = outcome.certification.as_mut() {
        total.merge(&certs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::collapsed_faults;
    use kms_netlist::{Delay, GateKind, Network};

    /// A carry-skip-shaped circuit: the skip gate's stuck-at-0 is
    /// redundant (the effect reconverges and cancels), the rest is
    /// testable, so both verdict kinds cross the commit channel.
    fn skip_net() -> Network {
        let mut net = Network::new("skip");
        let p = net.add_input("p");
        let q = net.add_input("q");
        let cin = net.add_input("cin");
        let skip = net.add_gate(GateKind::And, &[p, q], Delay::UNIT);
        let nskip = net.add_gate(GateKind::Not, &[skip], Delay::UNIT);
        let ripple = net.add_gate(GateKind::And, &[p, q, cin], Delay::UNIT);
        let a = net.add_gate(GateKind::And, &[nskip, ripple], Delay::UNIT);
        let b = net.add_gate(GateKind::And, &[skip, cin], Delay::UNIT);
        let cout = net.add_gate(GateKind::Or, &[a, b], Delay::UNIT);
        let sum = net.add_gate(GateKind::Xor, &[p, q, cin], Delay::UNIT);
        net.add_output("cout", cout);
        net.add_output("sum", sum);
        net
    }

    /// The worker pool commits verdicts in fault order regardless of
    /// which thread solves what, so a multi-worker run (with chunked
    /// claiming and lemma sharing active) must reproduce the in-line run
    /// bit for bit. Prescreens and the random drop are disabled so every
    /// fault actually travels through the pool — this is the
    /// ThreadSanitizer target for the classification pool, covering the
    /// chunk counter, the drop flags, the commit channel, and the
    /// mutex-protected lemma pool.
    #[test]
    fn parallel_classification_matches_sequential() {
        let net = skip_net();
        let faults = collapsed_faults(&net);
        let opts = |jobs| ParallelOptions {
            jobs,
            drop_patterns: 0,
            ..ParallelOptions::default()
        };
        let seq = classify_faults_report(&net, faults.clone(), opts(1));
        for jobs in [2, 4] {
            let par = classify_faults_report(&net, faults.clone(), opts(jobs));
            assert_eq!(seq.testability, par.testability, "jobs={jobs}");
        }
        assert!(seq.testability.verdicts.iter().any(|v| v.is_redundant()));
        // Every fault reaches the engine in both runs (the drop cascade
        // may spare some): the counter is the survivor count, not zero.
        assert!(seq.engine_calls > 0);
    }

    /// Exercises the slot-space lemma translation directly: one context
    /// classifies everything through the SAT path and exports; a second
    /// context imports the pool before classifying. Imported lemmas are
    /// entailed by the circuit, so every verdict — including the lex-min
    /// canonical vectors — must be unchanged.
    #[test]
    fn imported_lemmas_do_not_change_verdicts() {
        let net = skip_net();
        let topo = Topology::build(&net);
        let faults = collapsed_faults(&net);

        let mut exporter = SharedCnf::new(&net, &topo);
        exporter.enable_sharing();
        let baseline: Vec<Testability> = faults.iter().map(|&f| exporter.classify_sat(f)).collect();
        let pool = exporter.export_shared();

        let mut importer = SharedCnf::new(&net, &topo);
        // Encode every output cone so all slots are translatable, then
        // import the full pool up front — the worst case for bias.
        for o in net.outputs() {
            importer.good_lit(o.src);
        }
        let before = importer.solver.stats().lemmas_imported;
        importer.import_shared(&pool);
        let with_lemmas: Vec<Testability> =
            faults.iter().map(|&f| importer.classify_sat(f)).collect();
        assert_eq!(baseline, with_lemmas);
        // The UNSAT redundancy proofs on this reconvergent circuit must
        // actually produce shareable (slot-only) lemmas, and the importer
        // must accept at least one — otherwise this test is vacuous.
        assert!(!pool.is_empty(), "no lemmas exported");
        assert!(importer.solver.stats().lemmas_imported > before);
    }

    /// The chunked scheduler must behave when survivors outnumber chunks
    /// and when the drop cascade flushes mid-run: a larger fault list with
    /// dropping enabled, still bit-identical across job counts.
    #[test]
    fn chunked_scheduler_with_dropping_is_deterministic() {
        let mut net = Network::new("wide");
        let inputs: Vec<_> = (0..6).map(|i| net.add_input(format!("i{i}"))).collect();
        let mut layer = inputs.clone();
        for round in 0..3 {
            let mut nextl = Vec::new();
            for w in layer.windows(2) {
                let kind = if round % 2 == 0 {
                    GateKind::And
                } else {
                    GateKind::Or
                };
                nextl.push(net.add_gate(kind, &[w[0], w[1]], Delay::UNIT));
            }
            layer = nextl;
        }
        for (i, &g) in layer.iter().enumerate() {
            net.add_output(format!("o{i}"), g);
        }
        let faults = collapsed_faults(&net);
        let opts = |jobs| ParallelOptions {
            jobs,
            drop_patterns: 4, // keep plenty of survivors for the pool
            ..ParallelOptions::default()
        };
        let seq = classify_faults_report(&net, faults.clone(), opts(1));
        for jobs in [2, 3, 8] {
            let par = classify_faults_report(&net, faults.clone(), opts(jobs));
            assert_eq!(seq.testability, par.testability, "jobs={jobs}");
        }
    }
}
