//! Testability verdicts and whole-circuit redundancy identification.
//!
//! Two complete engines answer "is this stuck-at fault testable?":
//! [`Engine::Podem`] (structural search) and [`Engine::Sat`] (good/faulty
//! miter, cf. Schulz–Auth [22] whose ATPG the paper's implementation
//! used). They are cross-checked against each other in the test suites.

use kms_netlist::Network;

use crate::classify::ParallelOptions;
use crate::fault::{all_faults, collapsed_faults, Fault, FaultSite};
use crate::podem::{podem, PodemResult};

/// Which decision procedure to use for testability queries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// PODEM with the given backtrack limit (complete when the limit is
    /// not hit; queries that hit the limit report
    /// [`Testability::Unknown`]).
    Podem {
        /// Backtrack budget per fault.
        backtrack_limit: u64,
    },
    /// SAT miter between the good and faulty circuits — always complete.
    /// Builds a fresh solver and re-encodes the fault's cone per query.
    #[default]
    Sat,
    /// PODEM first (cheap structural search with a small budget), SAT as
    /// the complete fallback for aborted queries — the classic two-stage
    /// deterministic ATPG flow.
    Hybrid {
        /// PODEM backtrack budget before falling back to SAT.
        podem_backtracks: u64,
    },
    /// The shared-CNF incremental engine ([`crate::classify_faults`]):
    /// the good circuit is encoded once per network state, faults are
    /// classified under per-fault activation literals, SAT-derived test
    /// vectors immediately fault-drop the remaining faults, and surviving
    /// queries fan out across `jobs` worker threads. Always complete, and
    /// deterministic for any `jobs` value.
    SharedSat(ParallelOptions),
}

/// Why a fault's classification did not reach a verdict.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnknownReason {
    /// PODEM's backtrack budget ran out (no SAT fallback configured).
    Podem,
    /// The per-fault SAT conflict budget ran out.
    Conflicts,
    /// The per-fault SAT propagation budget ran out.
    Propagations,
    /// The per-fault wall-clock deadline passed.
    Deadline,
    /// The run's cancellation token was raised.
    Cancelled,
    /// The worker classifying this fault panicked; the panic was
    /// isolated and the fault degraded to unknown instead of killing
    /// the run.
    WorkerPanic,
    /// Fault injection aborted the query (`fault-inject` builds only).
    Injected,
}

impl UnknownReason {
    /// Short lowercase mnemonic for report surfaces.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnknownReason::Podem => "podem",
            UnknownReason::Conflicts => "conflicts",
            UnknownReason::Propagations => "propagations",
            UnknownReason::Deadline => "deadline",
            UnknownReason::Cancelled => "cancelled",
            UnknownReason::WorkerPanic => "worker-panic",
            UnknownReason::Injected => "injected",
        }
    }
}

impl std::fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl From<kms_sat::AbortReason> for UnknownReason {
    fn from(r: kms_sat::AbortReason) -> Self {
        match r {
            kms_sat::AbortReason::Conflicts => UnknownReason::Conflicts,
            kms_sat::AbortReason::Propagations => UnknownReason::Propagations,
            kms_sat::AbortReason::Deadline => UnknownReason::Deadline,
            kms_sat::AbortReason::Cancelled => UnknownReason::Cancelled,
            kms_sat::AbortReason::Injected => UnknownReason::Injected,
        }
    }
}

/// The verdict for one fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Testability {
    /// Detectable, with a test vector.
    Testable(Vec<bool>),
    /// Provably undetectable: the fault is redundant.
    Redundant,
    /// No verdict: an effort/resource budget ran out, the run was
    /// cancelled, or the classifying worker panicked. Unknown is a
    /// first-class degraded outcome — reports carry it through instead
    /// of hanging or aborting the whole run.
    Unknown(UnknownReason),
}

impl Testability {
    /// `true` for [`Testability::Redundant`].
    pub fn is_redundant(&self) -> bool {
        matches!(self, Testability::Redundant)
    }

    /// `true` for [`Testability::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, Testability::Unknown(_))
    }
}

/// Decides testability of one fault.
pub fn is_testable(net: &Network, fault: Fault, engine: Engine) -> Testability {
    match engine {
        Engine::Podem { backtrack_limit } => match podem(net, fault, backtrack_limit) {
            PodemResult::Test(cube) => {
                Testability::Testable(cube.iter().map(|v| v.to_bool().unwrap_or(false)).collect())
            }
            PodemResult::Redundant => Testability::Redundant,
            PodemResult::Aborted => Testability::Unknown(UnknownReason::Podem),
        },
        Engine::Sat => sat_testable(net, fault),
        Engine::Hybrid { podem_backtracks } => match podem(net, fault, podem_backtracks) {
            PodemResult::Test(cube) => {
                Testability::Testable(cube.iter().map(|v| v.to_bool().unwrap_or(false)).collect())
            }
            PodemResult::Redundant => Testability::Redundant,
            PodemResult::Aborted => sat_testable(net, fault),
        },
        Engine::SharedSat(_) => crate::classify::classify_one(net, fault),
    }
}

/// Cone-restricted SAT test generation: the classic miter, but only the
/// fault's transitive fanout is duplicated — everything outside it is
/// identical in the good and faulty circuits and is shared. The encoded
/// subcircuit is the transitive fanin of the affected outputs, which for
/// multi-output control logic is a small fraction of the network.
fn sat_testable(net: &Network, fault: Fault) -> Testability {
    use kms_netlist::{ConnRef, GateId};
    use kms_sat::{Lit, NetworkCnf, SatResult, Solver};

    let fanouts = net.fanouts();
    let n = net.num_gate_slots();

    // 1. The faulty region: gates whose value can differ from the good
    //    circuit. Output faults perturb the gate itself; connection faults
    //    perturb the sink gate.
    let mut in_tfo = vec![false; n];
    let mut stack: Vec<GateId> = vec![fault.observing_gate()];
    while let Some(g) = stack.pop() {
        if in_tfo[g.index()] {
            continue;
        }
        in_tfo[g.index()] = true;
        for c in &fanouts[g.index()] {
            stack.push(c.gate);
        }
    }
    // An output fault on a gate driving a PO directly is observable there
    // even with no gate fanout; in_tfo already contains the gate itself.
    let affected: Vec<usize> = net
        .outputs()
        .iter()
        .enumerate()
        .filter(|(_, o)| in_tfo[o.src.index()])
        .map(|(i, _)| i)
        .collect();
    if affected.is_empty() {
        return Testability::Redundant; // fault effect cannot reach any PO
    }

    // 2. The relevant good subcircuit: TFI of the affected outputs.
    let roots: Vec<GateId> = affected.iter().map(|&i| net.outputs()[i].src).collect();
    let keep = kms_netlist::cone::transitive_fanin(net, &roots);

    let mut solver = Solver::new();
    let good = NetworkCnf::encode_masked(net, &mut solver, Some(&keep));

    // 3. Faulty variables for TFO gates only (in topological order).
    // `stuck` is a literal whose value equals the stuck-at value: a fresh
    // variable pinned to `fault.stuck` by a unit clause.
    let stuck: Lit = {
        let v = solver.new_var();
        solver.add_clause(&[v.lit(fault.stuck)]);
        v.positive()
    };
    let mut faulty_var: Vec<Option<Lit>> = vec![None; n];
    for id in net.topo_order() {
        if !in_tfo[id.index()] || !keep[id.index()] {
            continue;
        }
        if fault.site == FaultSite::GateOutput(id) {
            faulty_var[id.index()] = Some(stuck);
            continue;
        }
        let g = net.gate(id);
        // Pin literals: faulty var inside the TFO, shared good var outside;
        // the faulted connection reads the stuck literal.
        let pins: Vec<Lit> = g
            .pins
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                if fault.site == FaultSite::Conn(ConnRef::new(id, pi)) {
                    stuck
                } else if let Some(l) = faulty_var[p.src.index()] {
                    l
                } else {
                    good.lit(p.src, true)
                }
            })
            .collect();
        let out = solver.new_var().positive();
        encode_gate(&mut solver, g.kind, out, &pins);
        faulty_var[id.index()] = Some(out);
    }

    // 4. Some affected output must differ.
    let mut diffs: Vec<Lit> = Vec::new();
    for &oi in &affected {
        let src = net.outputs()[oi].src;
        let gl = good.lit(src, true);
        let Some(fl) = faulty_var[src.index()] else {
            continue;
        };
        let d = solver.new_var().positive();
        solver.add_clause(&[!d, gl, fl]);
        solver.add_clause(&[!d, !gl, !fl]);
        solver.add_clause(&[d, !gl, fl]);
        solver.add_clause(&[d, gl, !fl]);
        diffs.push(d);
    }
    if diffs.is_empty() || !solver.add_clause(&diffs) {
        return Testability::Redundant;
    }
    match solver.solve() {
        SatResult::Unsat => Testability::Redundant,
        SatResult::Sat => Testability::Testable(good.model_inputs(&solver, net)),
        SatResult::Aborted(r) => unreachable!("unbudgeted solve aborted: {r}"),
    }
}

/// Emits the Tseitin clauses tying `out` to `kind` over `pins` (faulty-cone
/// gates reuse the same clause shapes as [`NetworkCnf`]).
fn encode_gate(
    solver: &mut kms_sat::Solver,
    kind: kms_netlist::GateKind,
    out: kms_sat::Lit,
    pins: &[kms_sat::Lit],
) {
    encode_gate_with_guard(solver, kind, out, pins, None)
}

/// As [`encode_gate`], but when `guard` is `Some(g)` every clause is
/// prefixed with `¬g`, so the gate's constraints hold only while `g` is
/// assumed true — the activation-literal scheme of the shared-CNF engine.
pub(crate) fn encode_gate_with_guard(
    solver: &mut kms_sat::Solver,
    kind: kms_netlist::GateKind,
    out: kms_sat::Lit,
    pins: &[kms_sat::Lit],
    guard: Option<kms_sat::Lit>,
) {
    use kms_netlist::GateKind;
    fn emit(solver: &mut kms_sat::Solver, guard: Option<kms_sat::Lit>, lits: &[kms_sat::Lit]) {
        match guard {
            None => {
                solver.add_clause(lits);
            }
            Some(g) => {
                let mut v = Vec::with_capacity(lits.len() + 1);
                v.push(!g);
                v.extend_from_slice(lits);
                solver.add_clause(&v);
            }
        }
    }
    match kind {
        GateKind::Input | GateKind::Const(_) => unreachable!("sources are never in a TFO"),
        GateKind::Buf => {
            emit(solver, guard, &[!out, pins[0]]);
            emit(solver, guard, &[out, !pins[0]]);
        }
        GateKind::Not => {
            emit(solver, guard, &[!out, !pins[0]]);
            emit(solver, guard, &[out, pins[0]]);
        }
        GateKind::And | GateKind::Nand => {
            let o = if kind == GateKind::And { out } else { !out };
            let mut big = vec![o];
            for &a in pins {
                emit(solver, guard, &[!o, a]);
                big.push(!a);
            }
            emit(solver, guard, &big);
        }
        GateKind::Or | GateKind::Nor => {
            let o = if kind == GateKind::Or { out } else { !out };
            let mut big = vec![!o];
            for &a in pins {
                emit(solver, guard, &[o, !a]);
                big.push(a);
            }
            emit(solver, guard, &big);
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = pins[0];
            for (p, &b) in pins.iter().enumerate().skip(1) {
                let last = p == pins.len() - 1;
                let t = if last && kind == GateKind::Xor {
                    out
                } else if last {
                    !out
                } else {
                    solver.new_var().positive()
                };
                emit(solver, guard, &[!t, acc, b]);
                emit(solver, guard, &[!t, !acc, !b]);
                emit(solver, guard, &[t, !acc, b]);
                emit(solver, guard, &[t, acc, !b]);
                acc = t;
            }
            if pins.len() == 1 {
                let o = if kind == GateKind::Xor { out } else { !out };
                emit(solver, guard, &[!o, pins[0]]);
                emit(solver, guard, &[o, !pins[0]]);
            }
        }
        GateKind::Mux => {
            let (s, d0, d1) = (pins[0], pins[1], pins[2]);
            emit(solver, guard, &[s, !out, d0]);
            emit(solver, guard, &[s, out, !d0]);
            emit(solver, guard, &[!s, !out, d1]);
            emit(solver, guard, &[!s, out, !d1]);
        }
    }
}

/// A whole-circuit testability report over the collapsed fault set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestabilityReport {
    /// The faults analyzed.
    pub faults: Vec<Fault>,
    /// Per-fault verdicts (parallel to `faults`).
    pub verdicts: Vec<Testability>,
}

impl TestabilityReport {
    /// The redundant faults found.
    pub fn redundant(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.verdicts)
            .filter(|(_, v)| v.is_redundant())
            .map(|(&f, _)| f)
            .collect()
    }

    /// Number of faults proved testable.
    pub fn testable_count(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| matches!(v, Testability::Testable(_)))
            .count()
    }

    /// Number of unresolved faults (engine budget exhausted).
    pub fn unknown_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.is_unknown()).count()
    }

    /// Unknown-verdict counts grouped by reason, in a fixed reason
    /// order (stable across runs for report rendering).
    pub fn unknown_reasons(&self) -> Vec<(UnknownReason, usize)> {
        const ORDER: [UnknownReason; 7] = [
            UnknownReason::Podem,
            UnknownReason::Conflicts,
            UnknownReason::Propagations,
            UnknownReason::Deadline,
            UnknownReason::Cancelled,
            UnknownReason::WorkerPanic,
            UnknownReason::Injected,
        ];
        ORDER
            .iter()
            .filter_map(|&reason| {
                let n = self
                    .verdicts
                    .iter()
                    .filter(|v| matches!(v, Testability::Unknown(r) if *r == reason))
                    .count();
                (n > 0).then_some((reason, n))
            })
            .collect()
    }

    /// `true` if every fault is testable — the circuit is fully
    /// single-stuck-at testable (irredundant), the paper's goal state.
    pub fn fully_testable(&self) -> bool {
        self.testable_count() == self.faults.len()
    }

    /// The test vectors collected from the testable verdicts.
    pub fn tests(&self) -> Vec<Vec<bool>> {
        self.verdicts
            .iter()
            .filter_map(|v| match v {
                Testability::Testable(t) => Some(t.clone()),
                _ => None,
            })
            .collect()
    }
}

/// Deterministic pseudo-random test vectors used to pre-screen faults
/// before invoking a decision procedure (the classic ATPG flow: random
/// patterns first, deterministic generation for the survivors).
pub fn random_tests(net: &Network, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let n = net.inputs().len();
    // Mix the seed through a splitmix64 finalizer so nearby seeds (and in
    // particular the pairs 2k / 2k+1, which the old `seed | 1` collapsed
    // onto one state) land on decorrelated xorshift trajectories.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    state ^= state >> 31;
    if state == 0 {
        state = 0x4B4D_5331_D1CE_CA5E;
    }
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..count)
        .map(|_| (0..n).map(|_| next() & 1 == 1).collect())
        .collect()
}

/// Analyzes every fault in the structurally collapsed fault set.
pub fn analyze(net: &Network, engine: Engine) -> TestabilityReport {
    analyze_faults(net, collapsed_faults(net), engine)
}

/// Analyzes the *full* (uncollapsed) fault universe.
pub fn analyze_all(net: &Network, engine: Engine) -> TestabilityReport {
    analyze_faults(net, all_faults(net), engine)
}

fn analyze_faults(net: &Network, faults: Vec<Fault>, engine: Engine) -> TestabilityReport {
    if let Engine::SharedSat(opts) = engine {
        return crate::classify::classify_faults(net, faults, opts);
    }
    // Random-pattern pre-screen: most testable faults fall to a few
    // hundred cheap simulations; only the survivors pay for SAT/PODEM.
    let tests = random_tests(net, 256, 0x4B4D_5331);
    let coverage = crate::fsim::fault_simulate(net, &faults, &tests);
    let verdicts = faults
        .iter()
        .zip(&coverage.detected_by)
        .map(|(&f, hit)| match hit {
            Some(ti) => Testability::Testable(tests[*ti].clone()),
            None => is_testable(net, f, engine),
        })
        .collect();
    TestabilityReport { faults, verdicts }
}

/// Finds one redundant fault, or `None` if the circuit is irredundant
/// (over the collapsed fault set; equivalence-collapsing preserves the
/// existence of redundancies).
pub fn find_redundant_fault(net: &Network, engine: Engine) -> Option<Fault> {
    let faults = collapsed_faults(net);
    if let Engine::SharedSat(opts) = engine {
        let cached = random_tests(net, 256, opts.seed);
        return crate::classify::scan_for_redundancy(net, &faults, opts, &cached).redundant;
    }
    let tests = random_tests(net, 256, 0x4B4D_5331);
    let coverage = crate::fsim::fault_simulate(net, &faults, &tests);
    faults
        .into_iter()
        .zip(coverage.detected_by)
        .filter(|(_, hit)| hit.is_none())
        .map(|(f, _)| f)
        .find(|&f| is_testable(net, f, engine).is_redundant())
}

/// Number of redundant faults in the collapsed fault set — the paper's
/// Table I "No. Red." column.
pub fn redundancy_count(net: &Network, engine: Engine) -> usize {
    analyze(net, engine)
        .verdicts
        .iter()
        .filter(|v| v.is_redundant())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{Delay, GateKind, Network};

    fn redundant_net() -> Network {
        // y = a + a·b: the AND gate's s-a-0 is redundant.
        let mut net = Network::new("r");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let t = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let y = net.add_gate(GateKind::Or, &[a, t], Delay::UNIT);
        net.add_output("y", y);
        net
    }

    fn clean_net() -> Network {
        let mut net = Network::new("c");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::Xor, &[a, b], Delay::UNIT);
        net.add_output("y", g);
        net
    }

    #[test]
    fn engines_agree_on_redundant_circuit() {
        let net = redundant_net();
        let podem_engine = Engine::Podem {
            backtrack_limit: 100_000,
        };
        let rp = analyze(&net, podem_engine);
        let rs = analyze(&net, Engine::Sat);
        assert_eq!(rp.faults, rs.faults);
        for ((f, vp), vs) in rp.faults.iter().zip(&rp.verdicts).zip(&rs.verdicts) {
            assert_eq!(
                vp.is_redundant(),
                vs.is_redundant(),
                "engines disagree on {f}"
            );
        }
        assert!(!rp.fully_testable());
        assert!(!rp.redundant().is_empty());
    }

    #[test]
    fn clean_circuit_fully_testable() {
        let net = clean_net();
        for engine in [
            Engine::Sat,
            Engine::Podem {
                backtrack_limit: 10_000,
            },
        ] {
            let r = analyze(&net, engine);
            assert!(r.fully_testable(), "{engine:?}");
            assert_eq!(r.unknown_count(), 0);
            assert!(find_redundant_fault(&net, engine).is_none());
            assert_eq!(redundancy_count(&net, engine), 0);
        }
    }

    #[test]
    fn test_vectors_actually_detect() {
        let net = redundant_net();
        let r = analyze(&net, Engine::Sat);
        for (f, v) in r.faults.iter().zip(&r.verdicts) {
            if let Testability::Testable(t) = v {
                let faulty = crate::inject::faulty_copy(&net, *f);
                assert_ne!(net.eval_bool(t), faulty.eval_bool(t), "{f}");
            }
        }
    }

    #[test]
    fn full_universe_finds_same_redundancy_presence() {
        let net = redundant_net();
        let collapsed = analyze(&net, Engine::Sat);
        let full = analyze_all(&net, Engine::Sat);
        assert_eq!(
            collapsed.redundant().is_empty(),
            full.redundant().is_empty()
        );
        assert!(full.faults.len() > collapsed.faults.len());
    }

    #[test]
    fn testability_tests_feed_fault_simulation() {
        let net = clean_net();
        let r = analyze_all(&net, Engine::Sat);
        let tests = r.tests();
        let cov = crate::fsim::fault_simulate(&net, &r.faults, &tests);
        assert!((cov.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_tests_distinguish_adjacent_seeds() {
        // Regression: the old `seed | 1` initialisation made seeds 2k and
        // 2k+1 generate identical pattern streams.
        let mut net = Network::new("s");
        for i in 0..8 {
            net.add_input(format!("i{i}"));
        }
        for (a, b) in [(2u64, 3u64), (0, 1), (100, 101), (7, 8)] {
            let ta = random_tests(&net, 16, a);
            let tb = random_tests(&net, 16, b);
            assert_ne!(ta, tb, "seeds {a} and {b} collided");
            // Same seed must stay reproducible.
            assert_eq!(ta, random_tests(&net, 16, a));
        }
    }
}

#[cfg(test)]
mod hybrid_tests {
    use super::*;
    use kms_netlist::{Delay, GateKind, Network};

    #[test]
    fn hybrid_agrees_with_sat_and_never_aborts() {
        let mut net = Network::new("h");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let t = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let y = net.add_gate(GateKind::Or, &[a, t], Delay::UNIT);
        let z = net.add_gate(GateKind::Xor, &[y, c], Delay::UNIT);
        net.add_output("z", z);
        // A zero-budget PODEM forces the SAT fallback on every query.
        let hybrid = Engine::Hybrid {
            podem_backtracks: 0,
        };
        for f in collapsed_faults(&net) {
            let vh = is_testable(&net, f, hybrid);
            let vs = is_testable(&net, f, Engine::Sat);
            assert!(!vh.is_unknown(), "{f}");
            assert_eq!(vh.is_redundant(), vs.is_redundant(), "{f}");
        }
    }
}
