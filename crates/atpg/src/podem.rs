//! PODEM (path-oriented decision making) test generation.
//!
//! The five-valued D-calculus is represented as a pair of three-valued
//! simulations (good, faulty): `D = (1,0)`, `D̄ = (0,1)`. Decisions are
//! made only on primary inputs, with objective/backtrace heuristics and
//! exhaustive backtracking, so the procedure is complete: exhausting the
//! decision tree proves the fault redundant. Three-valued simulation is
//! monotone in the unknowns, which is what makes the activation,
//! D-frontier, and X-path prunes sound.

use kms_netlist::{GateId, GateKind, Network, Value};

use crate::fault::{Fault, FaultSite};

/// The outcome of a PODEM run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PodemResult {
    /// A detecting input cube (one [`Value`] per primary input; `X` means
    /// either value works).
    Test(Vec<Value>),
    /// The decision tree was exhausted: the fault is untestable
    /// (redundant).
    Redundant,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

impl PodemResult {
    /// The test as Booleans with `X` filled as 0, if a test was found.
    pub fn test_vector(&self) -> Option<Vec<bool>> {
        match self {
            PodemResult::Test(cube) => {
                Some(cube.iter().map(|v| v.to_bool().unwrap_or(false)).collect())
            }
            _ => None,
        }
    }
}

/// A good/faulty value pair (the five-valued calculus: 0, 1, X, D, D̄ plus
/// the mixed partially-known states).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Pair {
    good: Value,
    faulty: Value,
}

impl Pair {
    const X: Pair = Pair {
        good: Value::X,
        faulty: Value::X,
    };

    fn is_d_or_dbar(self) -> bool {
        matches!(
            (self.good, self.faulty),
            (Value::One, Value::Zero) | (Value::Zero, Value::One)
        )
    }

    fn has_unknown(self) -> bool {
        self.good == Value::X || self.faulty == Value::X
    }
}

fn eval3(kind: GateKind, vals: &[Value]) -> Value {
    match kind {
        GateKind::Input => unreachable!("inputs seeded"),
        GateKind::Const(b) => Value::known(b),
        GateKind::Buf => vals[0],
        GateKind::Not => vals[0].not(),
        GateKind::And | GateKind::Nand => {
            let mut out = Value::One;
            for &v in vals {
                out = match (out, v) {
                    (Value::Zero, _) | (_, Value::Zero) => Value::Zero,
                    (Value::X, _) | (_, Value::X) => Value::X,
                    _ => Value::One,
                };
            }
            if kind == GateKind::Nand {
                out.not()
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut out = Value::Zero;
            for &v in vals {
                out = match (out, v) {
                    (Value::One, _) | (_, Value::One) => Value::One,
                    (Value::X, _) | (_, Value::X) => Value::X,
                    _ => Value::Zero,
                };
            }
            if kind == GateKind::Nor {
                out.not()
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut out = Value::Zero;
            for &v in vals {
                out = match (out, v) {
                    (Value::X, _) | (_, Value::X) => Value::X,
                    (a, b) => Value::known((a == Value::One) ^ (b == Value::One)),
                };
            }
            if kind == GateKind::Xnor {
                out.not()
            } else {
                out
            }
        }
        GateKind::Mux => match vals[0] {
            Value::Zero => vals[1],
            Value::One => vals[2],
            Value::X => {
                if vals[1] == vals[2] && vals[1] != Value::X {
                    vals[1]
                } else {
                    Value::X
                }
            }
        },
    }
}

/// The PODEM engine for one (network, fault) pair.
pub struct Podem<'a> {
    net: &'a Network,
    fault: Fault,
    order: Vec<GateId>,
    pairs: Vec<Pair>,
    pi_values: Vec<Value>,
    backtrack_limit: u64,
    backtracks: u64,
}

impl<'a> Podem<'a> {
    /// Prepares a PODEM run. `backtrack_limit` bounds the search; for the
    /// circuit sizes of the paper a limit in the thousands is effectively
    /// complete.
    pub fn new(net: &'a Network, fault: Fault, backtrack_limit: u64) -> Self {
        Podem {
            net,
            fault,
            order: net.topo_order(),
            pairs: vec![Pair::X; net.num_gate_slots()],
            pi_values: vec![Value::X; net.inputs().len()],
            backtrack_limit,
            backtracks: 0,
        }
    }

    /// Full five-valued resimulation under the current PI assignment.
    fn imply(&mut self) {
        for slot in self.pairs.iter_mut() {
            *slot = Pair::X;
        }
        let mut good_buf = Vec::new();
        let mut faulty_buf = Vec::new();
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            let g = self.net.gate(id);
            let mut pair = match g.kind {
                GateKind::Input => {
                    let pos = self
                        .net
                        .input_position(id)
                        .expect("input gates are registered inputs");
                    let v = self.pi_values[pos];
                    Pair { good: v, faulty: v }
                }
                _ => {
                    good_buf.clear();
                    faulty_buf.clear();
                    for (pin_idx, p) in g.pins.iter().enumerate() {
                        let mut pv = self.pairs[p.src.index()];
                        if self.fault.site
                            == FaultSite::Conn(kms_netlist::ConnRef::new(id, pin_idx))
                        {
                            pv.faulty = Value::known(self.fault.stuck);
                        }
                        good_buf.push(pv.good);
                        faulty_buf.push(pv.faulty);
                    }
                    Pair {
                        good: eval3(g.kind, &good_buf),
                        faulty: eval3(g.kind, &faulty_buf),
                    }
                }
            };
            if self.fault.site == FaultSite::GateOutput(id) {
                pair.faulty = Value::known(self.fault.stuck);
            }
            self.pairs[id.index()] = pair;
        }
    }

    /// `true` if some primary output currently observes the fault.
    fn detected(&self) -> bool {
        self.net.outputs().iter().any(|o| {
            let mut p = self.pairs[o.src.index()];
            if self.fault.site == FaultSite::GateOutput(o.src) {
                p.faulty = Value::known(self.fault.stuck);
            }
            p.is_d_or_dbar()
        })
    }

    /// The good value at the excitation source.
    fn excitation_value(&self) -> Value {
        self.pairs[self.fault.excitation_source(self.net).index()].good
    }

    /// Gates whose output is still (partly) unknown but which have a
    /// D/D̄ on some input: the classic D-frontier.
    fn d_frontier(&self) -> Vec<GateId> {
        let mut out = Vec::new();
        for &id in &self.order {
            let g = self.net.gate(id);
            if g.kind.is_source() {
                continue;
            }
            if !self.pairs[id.index()].has_unknown() {
                continue;
            }
            let has_d = g.pins.iter().enumerate().any(|(pin_idx, p)| {
                let mut pv = self.pairs[p.src.index()];
                if self.fault.site == FaultSite::Conn(kms_netlist::ConnRef::new(id, pin_idx)) {
                    pv.faulty = Value::known(self.fault.stuck);
                }
                pv.is_d_or_dbar()
            });
            if has_d {
                out.push(id);
            }
        }
        out
    }

    /// `true` if some D-frontier gate reaches a primary output through
    /// gates with unknown values (the X-path check).
    fn x_path_exists(&self, frontier: &[GateId]) -> bool {
        let fanouts = self.net.fanouts();
        let mut seen = vec![false; self.net.num_gate_slots()];
        let mut stack: Vec<GateId> = frontier.to_vec();
        let po_drivers: Vec<GateId> = self.net.outputs().iter().map(|o| o.src).collect();
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            if !self.pairs[id.index()].has_unknown() {
                continue;
            }
            if po_drivers.contains(&id) {
                return true;
            }
            for c in &fanouts[id.index()] {
                stack.push(c.gate);
            }
        }
        false
    }

    /// The next objective `(gate, value)`: excite the fault, then drive it
    /// through the first D-frontier gate.
    fn objective(&self) -> Option<(GateId, bool)> {
        let exc = self.excitation_value();
        if exc == Value::X {
            return Some((self.fault.excitation_source(self.net), !self.fault.stuck));
        }
        let frontier = self.d_frontier();
        let g = *frontier.first()?;
        let gate = self.net.gate(g);
        // Set an unknown input to the gate's noncontrolling value (or an
        // arbitrary value for parity-style gates).
        for (pin_idx, p) in gate.pins.iter().enumerate() {
            let pv = self.pairs[p.src.index()];
            if pv.good == Value::X {
                let v = match gate.kind {
                    GateKind::Mux if pin_idx == 0 => {
                        // Select the data pin carrying the D, if any.

                        self.pairs[gate.pins[2].src.index()].is_d_or_dbar()
                    }
                    _ => gate.kind.noncontrolling_value().unwrap_or(false),
                };
                return Some((p.src, v));
            }
        }
        None
    }

    /// Backtraces an objective to an unassigned primary input.
    fn backtrace(&self, mut gate: GateId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            let g = self.net.gate(gate);
            match g.kind {
                GateKind::Input => {
                    let pos = self
                        .net
                        .input_position(gate)
                        .expect("input gates are registered");
                    return if self.pi_values[pos] == Value::X {
                        Some((pos, value))
                    } else {
                        None
                    };
                }
                GateKind::Const(_) => return None,
                GateKind::Buf => gate = g.pins[0].src,
                GateKind::Not => {
                    value = !value;
                    gate = g.pins[0].src;
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    if g.kind.is_inverting() {
                        value = !value;
                    }
                    // Pick the first input with an unknown good value.
                    let next = g
                        .pins
                        .iter()
                        .find(|p| self.pairs[p.src.index()].good == Value::X)?;
                    gate = next.src;
                    // For AND a 0 objective needs one 0 input; a 1 needs
                    // all 1 — either way the chosen input takes `value`.
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Parity of the known inputs, folded into the target.
                    let mut v = value ^ (g.kind == GateKind::Xnor);
                    let mut next = None;
                    for p in &g.pins {
                        match self.pairs[p.src.index()].good {
                            Value::One => v = !v,
                            Value::Zero => {}
                            Value::X => {
                                if next.is_none() {
                                    next = Some(p.src);
                                }
                            }
                        }
                    }
                    gate = next?;
                    value = v;
                }
                GateKind::Mux => {
                    let sel = self.pairs[g.pins[0].src.index()].good;
                    match sel {
                        Value::Zero => gate = g.pins[1].src,
                        Value::One => gate = g.pins[2].src,
                        Value::X => {
                            // Drive the select first (to 0, arbitrarily).
                            gate = g.pins[0].src;
                            value = false;
                        }
                    }
                }
            }
        }
    }

    /// Runs the search.
    pub fn run(&mut self) -> PodemResult {
        // Decision stack: (pi index, current value, flipped already?).
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        loop {
            self.imply();
            if self.detected() {
                return PodemResult::Test(self.pi_values.clone());
            }
            let mut failed = self.excitation_value() == Value::known(self.fault.stuck);
            if !failed && self.excitation_value() != Value::X {
                let frontier = self.d_frontier();
                failed = frontier.is_empty() || !self.x_path_exists(&frontier);
            }
            if !failed {
                match self.objective().and_then(|(g, v)| self.backtrace(g, v)) {
                    Some((pi, v)) => {
                        self.pi_values[pi] = Value::known(v);
                        stack.push((pi, v, false));
                        continue;
                    }
                    None => failed = true,
                }
            }
            debug_assert!(failed);
            // Backtrack.
            loop {
                match stack.pop() {
                    None => return PodemResult::Redundant,
                    Some((pi, v, flipped)) => {
                        if flipped {
                            self.pi_values[pi] = Value::X;
                            continue;
                        }
                        self.backtracks += 1;
                        if self.backtracks > self.backtrack_limit {
                            return PodemResult::Aborted;
                        }
                        self.pi_values[pi] = Value::known(!v);
                        stack.push((pi, !v, true));
                        break;
                    }
                }
            }
        }
    }
}

/// Convenience wrapper: run PODEM on `(net, fault)`.
pub fn podem(net: &Network, fault: Fault, backtrack_limit: u64) -> PodemResult {
    Podem::new(net, fault, backtrack_limit).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use crate::inject::faulty_copy;
    use kms_netlist::{ConnRef, Delay, GateKind, Network};

    fn verify_test(net: &Network, fault: Fault, cube: &[Value]) {
        let bits: Vec<bool> = cube.iter().map(|v| v.to_bool().unwrap_or(false)).collect();
        let faulty = faulty_copy(net, fault);
        assert_ne!(
            net.eval_bool(&bits),
            faulty.eval_bool(&bits),
            "vector must distinguish good and faulty circuits for {fault}"
        );
    }

    #[test]
    fn and_gate_all_faults_testable() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        net.add_output("y", g);
        for f in all_faults(&net) {
            match podem(&net, f, 1000) {
                PodemResult::Test(cube) => verify_test(&net, f, &cube),
                other => panic!("{f} should be testable, got {other:?}"),
            }
        }
    }

    #[test]
    fn classic_redundancy_detected() {
        // y = (a AND b) OR (a AND NOT b) OR b  — actually use the classic:
        // y = a·b + a·b̄ = a; realize non-minimally: t1 = a·b, t2 = a·b̄,
        // y = t1 + t2 + a — the `+ a` makes t1/t2 connection faults
        // redundant? Use the textbook case: y = a + a·b: the connection
        // b (and the AND gate) is redundant for s-a-…
        let mut net = Network::new("r");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let t = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let y = net.add_gate(GateKind::Or, &[a, t], Delay::UNIT);
        net.add_output("y", y);
        // t s-a-0 is undetectable: y = a + a·b = a either way.
        let f = Fault::output(t, false);
        assert_eq!(podem(&net, f, 10_000), PodemResult::Redundant);
        // But t s-a-1 is testable (y becomes 1 when a=0).
        let f1 = Fault::output(t, true);
        match podem(&net, f1, 10_000) {
            PodemResult::Test(cube) => verify_test(&net, f1, &cube),
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn connection_fault_distinct_from_stem() {
        // a fans out to both pins of an OR: a→or(a,a). The connection
        // faults s-a-0 are redundant (other branch still carries a), the
        // stem fault is testable.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::Or, &[a, a], Delay::UNIT);
        net.add_output("y", g);
        assert!(matches!(
            podem(&net, Fault::conn(ConnRef::new(g, 0), false), 1000),
            PodemResult::Redundant
        ));
        assert!(matches!(
            podem(&net, Fault::output(a, false), 1000),
            PodemResult::Test(_)
        ));
    }

    #[test]
    fn xor_cone_faults() {
        let mut net = Network::new("x");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::Xor, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Xor, &[g1, c], Delay::UNIT);
        net.add_output("y", g2);
        // XOR trees are fully testable.
        for f in all_faults(&net) {
            match podem(&net, f, 10_000) {
                PodemResult::Test(cube) => verify_test(&net, f, &cube),
                other => panic!("{f} in XOR tree must be testable, got {other:?}"),
            }
        }
    }

    #[test]
    fn abort_on_tiny_limit() {
        // A 6-input parity tree with limit 0 must abort (or find a test
        // with zero backtracks — parity usually needs none, so use a
        // redundancy which requires exhausting the tree).
        let mut net = Network::new("r");
        let ins: Vec<_> = (0..6).map(|i| net.add_input(format!("i{i}"))).collect();
        let t = net.add_gate(GateKind::And, &ins[..2], Delay::UNIT);
        let y = net.add_gate(GateKind::Or, &[ins[0], t], Delay::UNIT);
        let z = net.add_gate(
            GateKind::Xor,
            &[y, ins[2], ins[3], ins[4], ins[5]],
            Delay::UNIT,
        );
        net.add_output("y", z);
        let f = Fault::output(t, false);
        assert_eq!(podem(&net, f, 0), PodemResult::Aborted);
        assert_eq!(podem(&net, f, 1_000_000), PodemResult::Redundant);
    }

    #[test]
    fn test_vector_helper() {
        let r = PodemResult::Test(vec![Value::One, Value::X]);
        assert_eq!(r.test_vector(), Some(vec![true, false]));
        assert_eq!(PodemResult::Redundant.test_vector(), None);
    }
}
