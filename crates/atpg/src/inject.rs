//! Fault injection: building the faulty copy of a network.

use kms_netlist::{Delay, Network};

use crate::fault::{Fault, FaultSite};

/// Injects `fault` into `net` in place (used on clones).
///
/// * Output faults replace the gate's driver with a constant for all of
///   its consumers (the gate itself is left in place but disconnected).
/// * Connection faults replace just that pin with a constant.
pub fn inject_fault_in_place(net: &mut Network, fault: Fault) {
    let c = net.add_const(fault.stuck);
    match fault.site {
        FaultSite::GateOutput(g) => {
            let fanouts = net.fanouts();
            for conn in &fanouts[g.index()] {
                net.gate_mut(conn.gate).pins[conn.pin].src = c;
            }
            for i in 0..net.outputs().len() {
                if net.outputs()[i].src == g {
                    net.set_output_src(i, c);
                }
            }
        }
        FaultSite::Conn(conn) => {
            net.gate_mut(conn.gate).pins[conn.pin] = kms_netlist::Pin::with_delay(c, Delay::ZERO);
        }
    }
}

/// A faulty clone of `net` (gate ids preserved, since `Clone` keeps the
/// arena). Input and output counts and order are preserved, so the copy
/// can be mitered or simulated against the original positionally.
pub fn faulty_copy(net: &Network, fault: Fault) -> Network {
    let mut copy = net.clone();
    inject_fault_in_place(&mut copy, fault);
    debug_assert!(copy.validate().is_ok());
    copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{ConnRef, Delay, GateKind, Network};

    #[test]
    fn conn_fault_changes_function() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        net.add_output("y", g);
        let f = faulty_copy(&net, Fault::conn(ConnRef::new(g, 1), true));
        // b stuck-at-1: y = a.
        assert_eq!(f.eval_bool(&[true, false]), vec![true]);
        assert_eq!(net.eval_bool(&[true, false]), vec![false]);
    }

    #[test]
    fn output_fault_rewires_all_consumers() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let g2 = net.add_gate(GateKind::And, &[g1, a], Delay::UNIT);
        net.add_output("y", g2);
        net.add_output("z", g1);
        let f = faulty_copy(&net, Fault::output(g1, true));
        // g1 stuck-at-1 everywhere: y = a, z = 1.
        assert_eq!(f.eval_bool(&[true]), vec![true, true]);
        assert_eq!(f.eval_bool(&[false]), vec![false, true]);
    }

    #[test]
    fn input_output_counts_preserved() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::Or, &[a, b], Delay::UNIT);
        net.add_output("y", g);
        let f = faulty_copy(&net, Fault::output(a, false));
        assert_eq!(f.inputs().len(), 2);
        assert_eq!(f.outputs().len(), 1);
        // a s-a-0: y = b.
        assert_eq!(f.eval_bool(&[true, false]), vec![false]);
    }
}
