//! Deterministic worker-panic injection for the chaos suite
//! (`fault-inject` builds only; this module does not exist otherwise).
//!
//! Mirrors `kms_sat::inject`: a global claim counter and an armed claim
//! number. Chunk claims come off one atomic counter in the classification
//! pool, so "the `j`-th claim" is a well-defined, schedule-independent
//! event even though *which* worker makes it is not. When the armed claim
//! happens, that worker panics mid-chunk; the pool's panic shield must
//! convert the chunk to `Unknown` verdicts without stalling the commit
//! frontier — exactly the recovery path `tests/chaos.rs` exercises.
//!
//! The hooks are process-global: tests that arm them must serialize
//! (the chaos suite holds a mutex across each scenario).

use std::sync::atomic::{AtomicU64, Ordering};

/// Disarmed sentinel (claims are counted from 1).
const OFF: u64 = 0;

static CHUNK_CLAIMS: AtomicU64 = AtomicU64::new(0);
static PANIC_AT: AtomicU64 = AtomicU64::new(OFF);

/// Arms the hook: the `j`-th chunk claim (1-based) after this call
/// panics the worker that made it.
///
/// # Panics
///
/// Panics if `j` is zero (zero is the disarmed sentinel).
pub fn panic_on_chunk(j: u64) {
    assert!(j > 0, "chunk claims are counted from 1");
    CHUNK_CLAIMS.store(0, Ordering::SeqCst);
    PANIC_AT.store(j, Ordering::SeqCst);
}

/// Disarms the hook and resets the claim counter.
pub fn clear() {
    PANIC_AT.store(OFF, Ordering::SeqCst);
    CHUNK_CLAIMS.store(0, Ordering::SeqCst);
}

/// Chunk claims observed since the last [`panic_on_chunk`]/[`clear`].
pub fn claims_observed() -> u64 {
    CHUNK_CLAIMS.load(Ordering::SeqCst)
}

/// Called by the classification pool once per chunk claim; panics when
/// this claim is the armed one.
pub(crate) fn check_chunk_claim() {
    let armed = PANIC_AT.load(Ordering::Relaxed);
    let n = CHUNK_CLAIMS.fetch_add(1, Ordering::Relaxed) + 1;
    if armed != OFF && n == armed {
        panic!("chaos: injected worker panic on chunk claim #{n}");
    }
}
