use std::fmt;

use kms_netlist::{ConnRef, GateId, GateKind, Network};

/// Where a stuck-at fault lives: on a gate's output stem, or on one input
/// connection (a branch). Connection faults are the ones the KMS algorithm
/// manipulates — "a stuck-at-0 fault and a stuck-at-1 fault on the first
/// edge of P" (Section VI).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FaultSite {
    /// The output of a gate (or a primary input).
    GateOutput(GateId),
    /// A specific input connection of a gate.
    Conn(ConnRef),
}

/// A single stuck-at fault.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fault {
    /// The fault site.
    pub site: FaultSite,
    /// The stuck value: `false` = stuck-at-0, `true` = stuck-at-1.
    pub stuck: bool,
}

impl Fault {
    /// Stuck-at fault on a gate output.
    pub fn output(gate: GateId, stuck: bool) -> Fault {
        Fault {
            site: FaultSite::GateOutput(gate),
            stuck,
        }
    }

    /// Stuck-at fault on an input connection.
    pub fn conn(conn: ConnRef, stuck: bool) -> Fault {
        Fault {
            site: FaultSite::Conn(conn),
            stuck,
        }
    }

    /// The gate whose evaluation the fault perturbs: the faulty gate
    /// itself for output faults, the sink gate for connection faults.
    pub fn observing_gate(&self) -> GateId {
        match self.site {
            FaultSite::GateOutput(g) => g,
            FaultSite::Conn(c) => c.gate,
        }
    }

    /// The signal source whose good value must differ from the stuck value
    /// for the fault to be excited.
    pub fn excitation_source(&self, net: &Network) -> GateId {
        match self.site {
            FaultSite::GateOutput(g) => g,
            FaultSite::Conn(c) => net.pin(c).src,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = u8::from(self.stuck);
        match self.site {
            FaultSite::GateOutput(g) => write!(f, "{g} s-a-{v}"),
            FaultSite::Conn(c) => write!(f, "{c} s-a-{v}"),
        }
    }
}

/// The complete single-stuck-at fault universe of a network: both
/// polarities on every live gate output (including primary inputs that
/// feed logic) and on every input connection of every logic gate.
pub fn all_faults(net: &Network) -> Vec<Fault> {
    let fanouts = net.fanouts();
    let mut out = Vec::new();
    for id in net.gate_ids() {
        let g = net.gate(id);
        if matches!(g.kind, GateKind::Const(_)) {
            continue; // constants are already stuck by definition
        }
        let drives_logic =
            !fanouts[id.index()].is_empty() || net.outputs().iter().any(|o| o.src == id);
        if drives_logic {
            out.push(Fault::output(id, false));
            out.push(Fault::output(id, true));
        }
        for pin in 0..g.pins.len() {
            let src_kind = net.gate(g.pins[pin].src).kind;
            if matches!(src_kind, GateKind::Const(_)) {
                continue;
            }
            out.push(Fault::conn(ConnRef::new(id, pin), false));
            out.push(Fault::conn(ConnRef::new(id, pin), true));
        }
    }
    out
}

/// Structurally collapses the fault universe by classic equivalence rules:
///
/// * On a fanout-free connection, the branch fault is equivalent to the
///   stem (gate-output) fault of its driver — keep the stem.
/// * An input stuck at a gate's controlling value is equivalent to the
///   output stuck at the controlled output value — keep the output fault.
/// * NOT/BUF input faults are equivalent to their output faults.
///
/// Collapsing only drops provably equivalent faults; testability verdicts
/// over the collapsed set equal those over the full set.
pub fn collapsed_faults(net: &Network) -> Vec<Fault> {
    let fanouts = net.fanouts();
    let mut out = Vec::new();
    for f in all_faults(net) {
        match f.site {
            FaultSite::GateOutput(_) => out.push(f),
            FaultSite::Conn(c) => {
                let sink = net.gate(c.gate);
                let src = net.pin(c).src;
                let src_fanout = fanouts[src.index()].len()
                    + net.outputs().iter().filter(|o| o.src == src).count();
                if src_fanout == 1 {
                    // Fanout-free: equivalent to the stem fault.
                    continue;
                }
                match sink.kind {
                    GateKind::Not | GateKind::Buf => continue, // ≡ output fault
                    GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                        if Some(f.stuck) == sink.kind.controlling_value() {
                            // ≡ output stuck at the controlled value.
                            continue;
                        }
                        out.push(f);
                    }
                    _ => out.push(f),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{Delay, GateKind, Network};

    fn simple() -> Network {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Not, &[g1], Delay::UNIT);
        net.add_output("y", g2);
        net
    }

    #[test]
    fn universe_size() {
        let net = simple();
        let faults = all_faults(&net);
        // Outputs: a, b, g1, g2 → 8; conns: g1 has 2 pins, g2 has 1 → 6.
        assert_eq!(faults.len(), 14);
    }

    #[test]
    fn constants_excluded() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let c = net.add_const(true);
        let g = net.add_gate(GateKind::And, &[a, c], Delay::UNIT);
        net.add_output("y", g);
        let faults = all_faults(&net);
        assert!(faults.iter().all(|f| {
            f.excitation_source(&net) != c && !matches!(f.site, FaultSite::GateOutput(x) if x == c)
        }));
    }

    #[test]
    fn collapsing_shrinks_but_keeps_outputs() {
        let net = simple();
        let full = all_faults(&net);
        let collapsed = collapsed_faults(&net);
        assert!(collapsed.len() < full.len());
        // All fanout-free branch faults dropped: only stem faults remain.
        assert!(collapsed
            .iter()
            .all(|f| matches!(f.site, FaultSite::GateOutput(_))));
    }

    #[test]
    fn fanout_branches_kept() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::And, &[a, a], Delay::UNIT);
        net.add_output("y", g1);
        let collapsed = collapsed_faults(&net);
        // `a` fans out twice: noncontrolling (s-a-1) branch faults kept.
        let branch_faults: Vec<_> = collapsed
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Conn(_)))
            .collect();
        assert_eq!(branch_faults.len(), 2);
        assert!(branch_faults.iter().all(|f| f.stuck));
    }

    #[test]
    fn display_and_accessors() {
        let net = simple();
        let g1 = net.gate_ids().nth(2).unwrap();
        let f = Fault::conn(ConnRef::new(g1, 1), true);
        assert!(f.to_string().contains("s-a-1"));
        assert_eq!(f.observing_gate(), g1);
        assert_eq!(f.excitation_source(&net), net.input_by_name("b").unwrap());
    }
}
