//! Per-check severity configuration.

use crate::diagnostic::CheckId;

/// How to treat a check's findings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Level {
    /// Skip the check entirely.
    Allow,
    /// Run the check; report findings as warnings.
    Warn,
    /// Run the check; report findings as errors.
    Deny,
}

/// Per-check levels for one lint run.
///
/// The defaults deny everything that breaks a hard structural invariant
/// (`cycle`, `undriven`, `arity`, `duplicate-name`, `fanout`, `delay`),
/// warn on the KMS conventions that are legal but suspicious
/// (`unreachable`, `not-simple`, `const-anomaly`), and *allow* the
/// semantic tier (`redundant-node`, `equivalent-node-pair`,
/// `constant-node`) and the dataflow tier (`dataflow-untestable`,
/// `codc-unobservable`): those checks run the `kms-analysis` SAT-backed
/// pass (the dataflow tier adds the `kms-dataflow` pass on top), a cost
/// callers opt into explicitly.
///
/// ```
/// use kms_lint::{CheckId, Level, LintConfig};
/// let config = LintConfig::default().with_level(CheckId::Unreachable, Level::Deny);
/// assert_eq!(config.level(CheckId::Unreachable), Level::Deny);
/// assert_eq!(config.level(CheckId::Cycle), Level::Deny);
/// ```
#[derive(Clone, Debug)]
pub struct LintConfig {
    levels: [Level; CheckId::ALL.len()],
}

impl Default for LintConfig {
    fn default() -> Self {
        let mut config = LintConfig {
            levels: [Level::Deny; CheckId::ALL.len()],
        };
        for check in [
            CheckId::Unreachable,
            CheckId::NotSimple,
            CheckId::ConstAnomaly,
        ] {
            config.set_level(check, Level::Warn);
        }
        for check in [
            CheckId::RedundantNode,
            CheckId::EquivalentNodePair,
            CheckId::ConstantNode,
            CheckId::DataflowUntestable,
            CheckId::CodcUnobservable,
        ] {
            config.set_level(check, Level::Allow);
        }
        config
    }
}

impl LintConfig {
    /// The default configuration with every warn-level check disabled:
    /// only hard invariants are checked. This is what the
    /// `debug-invariants` pipeline hook uses — mid-transform networks
    /// legitimately contain unswept gates and unpropagated constants.
    pub fn errors_only() -> Self {
        let mut config = LintConfig::default();
        for check in CheckId::ALL {
            if config.level(check) == Level::Warn {
                config.set_level(check, Level::Allow);
            }
        }
        config
    }

    /// The level configured for `check`.
    pub fn level(&self, check: CheckId) -> Level {
        self.levels[Self::slot(check)]
    }

    /// Sets the level for `check`.
    pub fn set_level(&mut self, check: CheckId, level: Level) {
        self.levels[Self::slot(check)] = level;
    }

    /// Builder-style [`LintConfig::set_level`].
    pub fn with_level(mut self, check: CheckId, level: Level) -> Self {
        self.set_level(check, level);
        self
    }

    fn slot(check: CheckId) -> usize {
        CheckId::ALL
            .iter()
            .position(|&c| c == check)
            .expect("CheckId::ALL covers every check")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let config = LintConfig::default();
        assert_eq!(config.level(CheckId::Cycle), Level::Deny);
        assert_eq!(config.level(CheckId::Undriven), Level::Deny);
        assert_eq!(config.level(CheckId::Arity), Level::Deny);
        assert_eq!(config.level(CheckId::DuplicateName), Level::Deny);
        assert_eq!(config.level(CheckId::Fanout), Level::Deny);
        assert_eq!(config.level(CheckId::Delay), Level::Deny);
        assert_eq!(config.level(CheckId::Unreachable), Level::Warn);
        assert_eq!(config.level(CheckId::NotSimple), Level::Warn);
        assert_eq!(config.level(CheckId::ConstAnomaly), Level::Warn);
        assert_eq!(config.level(CheckId::RedundantNode), Level::Allow);
        assert_eq!(config.level(CheckId::EquivalentNodePair), Level::Allow);
        assert_eq!(config.level(CheckId::ConstantNode), Level::Allow);
        assert_eq!(config.level(CheckId::DataflowUntestable), Level::Allow);
        assert_eq!(config.level(CheckId::CodcUnobservable), Level::Allow);
    }

    #[test]
    fn errors_only_disables_warnings() {
        let config = LintConfig::errors_only();
        assert_eq!(config.level(CheckId::Unreachable), Level::Allow);
        assert_eq!(config.level(CheckId::Cycle), Level::Deny);
    }

    #[test]
    fn with_level_overrides() {
        let config = LintConfig::default()
            .with_level(CheckId::Cycle, Level::Allow)
            .with_level(CheckId::NotSimple, Level::Deny);
        assert_eq!(config.level(CheckId::Cycle), Level::Allow);
        assert_eq!(config.level(CheckId::NotSimple), Level::Deny);
    }
}
