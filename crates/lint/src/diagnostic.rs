//! Diagnostic types: what a check found, where, and how bad it is.

use std::fmt;

use kms_netlist::{ConnRef, GateId};

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Advisory: the network is usable but violates a KMS convention.
    Warning,
    /// The network breaks a structural invariant; downstream engines may
    /// panic or produce garbage.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Identifies one lint check. The string form (via [`CheckId::as_str`]) is
/// the stable id used on the command line and in JSON output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CheckId {
    /// Combinational cycle among live gates.
    Cycle,
    /// Pin or primary output referencing a dead or out-of-range gate.
    Undriven,
    /// Pin count invalid for the gate kind.
    Arity,
    /// Two live gates — or two outputs — share a name.
    DuplicateName,
    /// Derived fanout table inconsistent with the pin edge list.
    Fanout,
    /// Negative gate or wire delay.
    Delay,
    /// Live logic gate with no path to any primary output.
    Unreachable,
    /// Complex gate (XOR/XNOR/MUX/NAND/NOR) where KMS needs simple gates.
    NotSimple,
    /// Constant-propagation anomaly (Section VII conventions).
    ConstAnomaly,
    /// Gate carrying a statically-proved-untestable stuck-at fault
    /// (semantic tier, `kms-analysis`).
    RedundantNode,
    /// Two live gates proved functionally equivalent or antivalent
    /// (semantic tier, `kms-analysis`).
    EquivalentNodePair,
    /// Live logic gate proved to compute a constant function (semantic
    /// tier, `kms-analysis`).
    ConstantNode,
    /// Gate carrying a stuck-at fault the dataflow pass proves untestable
    /// where the implication tier cannot (dataflow tier, `kms-dataflow`:
    /// ternary/cofactor constants, CODC cuts, recursive learning).
    DataflowUntestable,
    /// Live logic gate with no unblocked path to any primary output:
    /// every route is cut by a proved-constant controlling side input
    /// (dataflow tier, `kms-dataflow`).
    CodcUnobservable,
}

/// Which analysis family a check belongs to.
///
/// Structural checks read the netlist graph only and run in linear time;
/// semantic checks reason about the *functions* the gates compute (the
/// `kms-analysis` structural-hash / SAT-sweep / implication pass) and may
/// invoke a SAT solver, so they default to [`crate::Level::Allow`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Tier {
    /// Graph well-formedness and KMS conventions.
    Structural,
    /// Function-level facts proved by `kms-analysis`.
    Semantic,
    /// Don't-care facts proved by `kms-dataflow` (ternary abstract
    /// interpretation, CODCs, recursive learning) on top of the semantic
    /// pass.
    Dataflow,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Structural => "structural",
            Tier::Semantic => "semantic",
            Tier::Dataflow => "dataflow",
        })
    }
}

impl CheckId {
    /// Every check, in execution order (structural errors first, then the
    /// semantic tier, then the dataflow tier).
    pub const ALL: [CheckId; 14] = [
        CheckId::Cycle,
        CheckId::Undriven,
        CheckId::Arity,
        CheckId::DuplicateName,
        CheckId::Fanout,
        CheckId::Delay,
        CheckId::Unreachable,
        CheckId::NotSimple,
        CheckId::ConstAnomaly,
        CheckId::RedundantNode,
        CheckId::EquivalentNodePair,
        CheckId::ConstantNode,
        CheckId::DataflowUntestable,
        CheckId::CodcUnobservable,
    ];

    /// The stable string id, e.g. `"duplicate-name"`.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckId::Cycle => "cycle",
            CheckId::Undriven => "undriven",
            CheckId::Arity => "arity",
            CheckId::DuplicateName => "duplicate-name",
            CheckId::Fanout => "fanout",
            CheckId::Delay => "delay",
            CheckId::Unreachable => "unreachable",
            CheckId::NotSimple => "not-simple",
            CheckId::ConstAnomaly => "const-anomaly",
            CheckId::RedundantNode => "redundant-node",
            CheckId::EquivalentNodePair => "equivalent-node-pair",
            CheckId::ConstantNode => "constant-node",
            CheckId::DataflowUntestable => "dataflow-untestable",
            CheckId::CodcUnobservable => "codc-unobservable",
        }
    }

    /// Parses a string id back to a check; `None` for unknown ids.
    pub fn parse(s: &str) -> Option<CheckId> {
        CheckId::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// The analysis tier the check belongs to.
    pub fn tier(self) -> Tier {
        match self {
            CheckId::RedundantNode | CheckId::EquivalentNodePair | CheckId::ConstantNode => {
                Tier::Semantic
            }
            CheckId::DataflowUntestable | CheckId::CodcUnobservable => Tier::Dataflow,
            _ => Tier::Structural,
        }
    }

    /// One-line description of what the check looks for.
    pub fn description(self) -> &'static str {
        match self {
            CheckId::Cycle => "combinational cycle among live gates",
            CheckId::Undriven => "pin or output referencing a dead or missing gate",
            CheckId::Arity => "pin count invalid for the gate kind",
            CheckId::DuplicateName => "two live gates or two outputs share a name",
            CheckId::Fanout => "fanout table inconsistent with the pin edge list",
            CheckId::Delay => "negative gate or wire delay",
            CheckId::Unreachable => "live logic gate with no path to a primary output",
            CheckId::NotSimple => "complex gate where KMS requires simple gates",
            CheckId::ConstAnomaly => "constant-propagation anomaly (paper Section VII)",
            CheckId::RedundantNode => "gate with a statically-proved-untestable stuck-at fault",
            CheckId::EquivalentNodePair => "two gates proved functionally equivalent or antivalent",
            CheckId::ConstantNode => "live logic gate proved to compute a constant",
            CheckId::DataflowUntestable => {
                "stuck-at fault proved untestable by the dataflow pass alone"
            }
            CheckId::CodcUnobservable => {
                "gate whose every output path is blocked by a proved constant"
            }
        }
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the network a diagnostic points.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Site {
    /// The network as a whole (e.g. a cycle involving many gates).
    Network,
    /// A specific gate.
    Gate(GateId),
    /// A specific connection (input pin of a gate).
    Conn(ConnRef),
    /// A primary output, by index into [`kms_netlist::Network::outputs`].
    Output(usize),
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Network => f.write_str("network"),
            Site::Gate(id) => write!(f, "{id}"),
            Site::Conn(c) => write!(f, "{c}"),
            Site::Output(i) => write!(f, "output#{i}"),
        }
    }
}

/// One finding: which check fired, where, at what severity, with a
/// human-readable message and (usually) a suggested fix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Error or warning, per the [`crate::LintConfig`] level of the check.
    pub severity: Severity,
    /// The check that produced this diagnostic.
    pub check: CheckId,
    /// The gate / connection / output the diagnostic points at.
    pub site: Site,
    /// Human-readable description of the specific finding.
    pub message: String,
    /// Suggested remediation, when one is known.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.check, self.site, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  suggestion: {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_id_roundtrip() {
        for c in CheckId::ALL {
            assert_eq!(CheckId::parse(c.as_str()), Some(c));
            assert!(!c.description().is_empty());
        }
        assert_eq!(CheckId::parse("no-such-check"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(CheckId::DuplicateName.to_string(), "duplicate-name");
        assert_eq!(Site::Gate(GateId::from_index(4)).to_string(), "g4");
        assert_eq!(
            Site::Conn(ConnRef::new(GateId::from_index(4), 1)).to_string(),
            "g4.1"
        );
        assert_eq!(Site::Output(0).to_string(), "output#0");
        assert_eq!(Site::Network.to_string(), "network");
    }

    #[test]
    fn diagnostic_display_includes_suggestion() {
        let d = Diagnostic {
            severity: Severity::Warning,
            check: CheckId::Unreachable,
            site: Site::Gate(GateId::from_index(7)),
            message: "gate drives nothing".into(),
            suggestion: Some("run transform::sweep".into()),
        };
        let s = d.to_string();
        assert!(s.contains("warning[unreachable] at g7"));
        assert!(s.contains("suggestion: run transform::sweep"));
    }
}
