//! `kms-lint` — structural static analysis for [`kms_netlist::Network`]s.
//!
//! The KMS algorithm (and every oracle it rests on — PODEM, the SAT
//! sensitization encoding, the viability engine) assumes its input network
//! is *well-formed*: acyclic, fully driven, with consistent fanout
//! bookkeeping and the paper's Section VI/VII structural conventions
//! respected. A malformed network used to surface as a panic deep inside
//! one of those engines; this crate turns the assumptions into an explicit
//! check catalog producing structured [`Diagnostic`]s instead.
//!
//! # Check catalog
//!
//! | check id | tier | default | meaning |
//! |---|---|---|---|
//! | `cycle` | structural | deny | combinational cycle among live gates |
//! | `undriven` | structural | deny | pin or primary output referencing a dead/missing gate |
//! | `arity` | structural | deny | pin count invalid for the gate kind |
//! | `duplicate-name` | structural | deny | two live gates (or two outputs) share a name |
//! | `fanout` | structural | deny | fanout table inconsistent with the pin edge list |
//! | `delay` | structural | deny | negative gate or wire delay (defensive; see [`Delay`]) |
//! | `unreachable` | structural | warn | live logic gate with no path to any primary output |
//! | `not-simple` | structural | warn | complex gate where the KMS oracles need simple ones |
//! | `const-anomaly` | structural | warn | unpropagated constants / single-input AND-OR gates |
//! | `redundant-node` | semantic | allow | gate with a statically-proved-untestable stuck-at fault |
//! | `equivalent-node-pair` | semantic | allow | two gates proved equivalent/antivalent (`kms-analysis`) |
//! | `constant-node` | semantic | allow | live logic gate proved constant over all inputs |
//! | `dataflow-untestable` | dataflow | allow | stuck-at fault only the `kms-dataflow` pass proves untestable |
//! | `codc-unobservable` | dataflow | allow | gate whose every output path is blocked by a proved constant |
//!
//! The *structural* tier reads the graph only; the *semantic* tier runs
//! the `kms-analysis` pass (structural hashing, SAT sweeping, implication
//! learning) and can therefore invoke a SAT solver — it is allow-by-default
//! and opt-in per check (`--warn redundant-node` on the CLI). The
//! *dataflow* tier additionally runs the `kms-dataflow` pass (ternary
//! abstract interpretation, CODCs, recursive learning) on top of the
//! semantic analysis and reports only facts the semantic tier misses.
//!
//! # Example
//!
//! ```
//! use kms_lint::{lint_network, LintConfig, NetworkLint, CheckId};
//! use kms_netlist::{Network, GateKind, Delay};
//!
//! let mut net = Network::new("demo");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let g = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
//! net.add_output("y", g);
//! assert!(net.lint().is_clean());
//!
//! // An orphan gate is reachable from no output: `unreachable` fires.
//! net.add_gate(GateKind::Or, &[a, b], Delay::UNIT);
//! let report = lint_network(&net, &LintConfig::default());
//! assert_eq!(report.diagnostics[0].check, CheckId::Unreachable);
//! ```
//!
//! [`Delay`]: kms_netlist::Delay

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checks;
mod config;
mod diagnostic;
mod render;

pub use config::{Level, LintConfig};
pub use diagnostic::{CheckId, Diagnostic, Severity, Site, Tier};
pub use render::render_json;

use kms_netlist::Network;

/// The result of linting one network: every diagnostic produced by the
/// enabled checks, errors first, in stable (check, site) order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LintReport {
    /// The diagnostics, sorted errors-before-warnings then by check id.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// `true` when no diagnostic of any severity was produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when at least one error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Iterates over the diagnostics produced by `check`.
    pub fn by_check(&self, check: CheckId) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.check == check)
    }

    /// Renders the report as human-readable text, one diagnostic per
    /// paragraph, with a trailing summary line.
    pub fn to_text(&self) -> String {
        render::render_text(self)
    }

    /// Renders the report as a JSON object (no external dependencies; see
    /// [`render_json`] for the schema).
    pub fn to_json(&self, network_name: &str) -> String {
        render::render_json(self, network_name)
    }
}

/// Runs every check enabled in `config` over `net`.
///
/// Checks are ordered so that structural prerequisites come first: if the
/// edge list itself is broken (`undriven`), the cycle and reachability
/// analyses still run — they simply skip the dangling edges — so one
/// defect does not hide an unrelated one.
pub fn lint_network(net: &Network, config: &LintConfig) -> LintReport {
    let mut diagnostics = Vec::new();
    let mut semantic: Vec<(CheckId, Severity)> = Vec::new();
    for check in CheckId::ALL {
        let level = config.level(check);
        if level == Level::Allow {
            continue;
        }
        let severity = match level {
            Level::Deny => Severity::Error,
            _ => Severity::Warning,
        };
        if check.tier() != Tier::Structural {
            // Deferred: the semantic and dataflow checks share one
            // analysis pass.
            semantic.push((check, severity));
        } else {
            checks::run_check(net, check, severity, &mut diagnostics);
        }
    }
    checks::run_semantic_checks(net, &semantic, &mut diagnostics);
    // Total order: checks can emit several diagnostics at the same site
    // (e.g. both stuck-at values of one gate), so the message text is the
    // final tie-break — without it the order within a site would be
    // whatever emission order the check used, and JSON output would not
    // be reproducible across refactors of the check internals.
    diagnostics.sort_by(|a, b| {
        (
            a.severity != Severity::Error,
            a.check as u8,
            a.site,
            &a.message,
        )
            .cmp(&(
                b.severity != Severity::Error,
                b.check as u8,
                b.site,
                &b.message,
            ))
    });
    LintReport { diagnostics }
}

/// Extension methods hanging the linter off [`Network`] itself.
///
/// `Network::validate()` (in `kms-netlist`) remains the cheap fail-fast
/// check returning the *first* violated invariant; `lint()` is the full
/// pass returning *every* finding as a structured diagnostic.
pub trait NetworkLint {
    /// Lints with the default configuration.
    fn lint(&self) -> LintReport;

    /// Lints with an explicit configuration.
    fn lint_with(&self, config: &LintConfig) -> LintReport;
}

impl NetworkLint for Network {
    fn lint(&self) -> LintReport {
        lint_network(self, &LintConfig::default())
    }

    fn lint_with(&self, config: &LintConfig) -> LintReport {
        lint_network(self, config)
    }
}

/// Panics with a rendered report if `net` has any lint errors.
///
/// This is the `debug-invariants` hook used by `kms-core` and `kms-opt`
/// after every transform step; `context` names the step for the panic
/// message.
pub fn assert_well_formed(net: &Network, context: &str) {
    let report = lint_network(net, &LintConfig::errors_only());
    if report.has_errors() {
        panic!(
            "network {:?} failed invariant check {context}:\n{}",
            net.name(),
            report.to_text()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_netlist::{Delay, GateKind};

    #[test]
    fn clean_network_is_clean() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        net.add_output("y", g);
        let report = net.lint();
        assert!(report.is_clean(), "{}", report.to_text());
        assert_well_formed(&net, "test");
    }

    #[test]
    fn report_counters() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        net.add_gate(GateKind::Not, &[a], Delay::UNIT); // unreachable
        let report = net.lint();
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.has_errors());
        assert!(!report.is_clean());
        assert_eq!(report.by_check(CheckId::Unreachable).count(), 1);
    }

    #[test]
    fn errors_sort_before_warnings() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let x = net.add_gate(GateKind::Xor, &[a, a], Delay::UNIT); // not-simple warn
        net.add_output("y", x);
        net.gate_mut(x).kind = GateKind::Mux; // arity error (2 pins on a mux)
        let report = net.lint();
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    #[should_panic(expected = "failed invariant check after-test-step")]
    fn assert_well_formed_panics_on_errors() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        net.add_output("y", g);
        net.gate_mut(g).pins.clear(); // arity violation
        assert_well_formed(&net, "after-test-step");
    }
}
