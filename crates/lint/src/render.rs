//! Text and JSON rendering of a [`LintReport`].
//!
//! The JSON writer is hand-rolled (the workspace has no serde); the schema
//! is intentionally small and stable, and versioned since the semantic
//! check tier landed (`schema_version` 1 was the same shape without the
//! version and `tier` fields; 2 added them; 3 added the dataflow check
//! tier — `"tier": "dataflow"` and the `dataflow-untestable` /
//! `codc-unobservable` check ids — and made the diagnostic order a total
//! order by breaking site ties on the message text):
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "network": "<model name>",
//!   "errors": 1,
//!   "warnings": 2,
//!   "diagnostics": [
//!     {
//!       "severity": "error",
//!       "check": "undriven",
//!       "tier": "structural",
//!       "site": "g4.0",
//!       "message": "...",
//!       "suggestion": "..."
//!     }
//!   ]
//! }
//! ```

use std::fmt::Write;

use crate::LintReport;

/// Renders the report as human-readable text.
pub(crate) fn render_text(report: &LintReport) -> String {
    let mut s = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(s, "{d}");
    }
    let _ = writeln!(
        s,
        "{} error(s), {} warning(s)",
        report.error_count(),
        report.warning_count()
    );
    s
}

/// Renders the report as a JSON object; `network_name` fills the `network`
/// field so batched CLI output stays attributable.
pub fn render_json(report: &LintReport, network_name: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 3,\n");
    let _ = writeln!(s, "  \"network\": {},", json_string(network_name));
    let _ = writeln!(s, "  \"errors\": {},", report.error_count());
    let _ = writeln!(s, "  \"warnings\": {},", report.warning_count());
    s.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        let _ = write!(
            s,
            "\n      \"severity\": {},",
            json_string(&d.severity.to_string())
        );
        let _ = write!(s, "\n      \"check\": {},", json_string(d.check.as_str()));
        let _ = write!(
            s,
            "\n      \"tier\": {},",
            json_string(&d.check.tier().to_string())
        );
        let _ = write!(s, "\n      \"site\": {},", json_string(&d.site.to_string()));
        let _ = write!(s, "\n      \"message\": {}", json_string(&d.message));
        if let Some(sug) = &d.suggestion {
            let _ = write!(s, ",\n      \"suggestion\": {}", json_string(sug));
        }
        s.push_str("\n    }");
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Escapes `v` as a JSON string literal.
fn json_string(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckId, Diagnostic, Severity, Site};

    fn sample_report() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                severity: Severity::Error,
                check: CheckId::Undriven,
                site: Site::Network,
                message: "pin \"x\" broken\n(second line)".into(),
                suggestion: Some("fix it".into()),
            }],
        }
    }

    #[test]
    fn text_has_summary_line() {
        let text = render_text(&sample_report());
        assert!(text.contains("error[undriven] at network"));
        assert!(text.trim_end().ends_with("1 error(s), 0 warning(s)"));
    }

    #[test]
    fn json_escapes_and_structures() {
        let json = render_json(&sample_report(), "c17");
        assert!(json.contains("\"schema_version\": 3"));
        assert!(json.contains("\"network\": \"c17\""));
        assert!(json.contains("\"check\": \"undriven\""));
        assert!(json.contains("\"tier\": \"structural\""));
        assert!(json.contains("\\\"x\\\" broken\\n(second line)"));
        assert!(json.contains("\"suggestion\": \"fix it\""));
        assert!(json.contains("\"errors\": 1"));
    }

    #[test]
    fn json_semantic_tier_field() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                severity: Severity::Warning,
                check: CheckId::ConstantNode,
                site: Site::Network,
                message: "m".into(),
                suggestion: None,
            }],
        };
        let json = render_json(&report, "n");
        assert!(json.contains("\"check\": \"constant-node\""));
        assert!(json.contains("\"tier\": \"semantic\""));
    }

    #[test]
    fn json_dataflow_tier_field() {
        let report = LintReport {
            diagnostics: vec![Diagnostic {
                severity: Severity::Warning,
                check: CheckId::CodcUnobservable,
                site: Site::Network,
                message: "m".into(),
                suggestion: None,
            }],
        };
        let json = render_json(&report, "n");
        assert!(json.contains("\"check\": \"codc-unobservable\""));
        assert!(json.contains("\"tier\": \"dataflow\""));
    }

    #[test]
    fn json_empty_report() {
        let json = render_json(&LintReport::default(), "empty");
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"errors\": 0"));
    }

    #[test]
    fn json_string_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }
}
