//! The check implementations.
//!
//! Every check walks the network through its public read API only, and is
//! defensive about corrupt edges: a pin whose source id is out of range or
//! dead (the `undriven` finding) is skipped by the graph traversals
//! (`cycle`, `unreachable`, `fanout`) so a single broken edge does not make
//! the other checks panic or mask their findings.

use std::collections::HashMap;

use kms_analysis::{AnalysisOptions, FaultRef, StaticAnalysis};
use kms_dataflow::{DataflowAnalysis, DataflowOptions};
use kms_netlist::{ConnRef, GateId, GateKind, Network};

use crate::diagnostic::{CheckId, Diagnostic, Severity, Site};

/// Runs one structural check over `net`, appending findings at `severity`
/// to `out`. Semantic checks go through [`run_semantic_checks`], which
/// shares one analysis pass across them.
pub(crate) fn run_check(
    net: &Network,
    check: CheckId,
    severity: Severity,
    out: &mut Vec<Diagnostic>,
) {
    let mut emit = |site: Site, message: String, suggestion: Option<&str>| {
        out.push(Diagnostic {
            severity,
            check,
            site,
            message,
            suggestion: suggestion.map(String::from),
        });
    };
    match check {
        CheckId::Cycle => check_cycle(net, &mut emit),
        CheckId::Undriven => check_undriven(net, &mut emit),
        CheckId::Arity => check_arity(net, &mut emit),
        CheckId::DuplicateName => check_duplicate_name(net, &mut emit),
        CheckId::Fanout => check_fanout(net, &mut emit),
        CheckId::Delay => check_delay(net, &mut emit),
        CheckId::Unreachable => check_unreachable(net, &mut emit),
        CheckId::NotSimple => check_not_simple(net, &mut emit),
        CheckId::ConstAnomaly => check_const_anomaly(net, &mut emit),
        CheckId::RedundantNode
        | CheckId::EquivalentNodePair
        | CheckId::ConstantNode
        | CheckId::DataflowUntestable
        | CheckId::CodcUnobservable => {
            unreachable!("semantic and dataflow checks run through run_semantic_checks")
        }
    }
}

/// Runs the enabled semantic-tier checks, sharing a single
/// [`StaticAnalysis`] pass (structural hash, SAT sweep, implication
/// learning) across all of them.
///
/// The analysis engines index straight into the netlist, so the semantic
/// tier runs only when the hard structural invariants hold — on a broken
/// graph the structural tier owns the findings and this pass stays silent.
pub(crate) fn run_semantic_checks(
    net: &Network,
    enabled: &[(CheckId, Severity)],
    out: &mut Vec<Diagnostic>,
) {
    if enabled.is_empty() {
        return;
    }
    let mut hard = Vec::new();
    for check in [
        CheckId::Cycle,
        CheckId::Undriven,
        CheckId::Arity,
        CheckId::Fanout,
    ] {
        run_check(net, check, Severity::Error, &mut hard);
    }
    if !hard.is_empty() {
        return;
    }
    let analysis = StaticAnalysis::build(net, &AnalysisOptions::default());
    // The dataflow pass is built only when one of its checks is enabled —
    // it costs a second fixpoint/learning pass on top of the analysis.
    let dataflow = enabled
        .iter()
        .any(|&(c, _)| matches!(c, CheckId::DataflowUntestable | CheckId::CodcUnobservable))
        .then(|| DataflowAnalysis::build(net, &analysis, &DataflowOptions::default()));
    for &(check, severity) in enabled {
        let mut emit = |site: Site, message: String, suggestion: Option<&str>| {
            out.push(Diagnostic {
                severity,
                check,
                site,
                message,
                suggestion: suggestion.map(String::from),
            });
        };
        match check {
            CheckId::RedundantNode => check_redundant_node(net, &analysis, &mut emit),
            CheckId::EquivalentNodePair => check_equivalent_node_pair(net, &analysis, &mut emit),
            CheckId::ConstantNode => check_constant_node(net, &analysis, &mut emit),
            CheckId::DataflowUntestable => check_dataflow_untestable(
                net,
                &analysis,
                dataflow.as_ref().expect("built when enabled"),
                &mut emit,
            ),
            CheckId::CodcUnobservable => check_codc_unobservable(
                net,
                dataflow.as_ref().expect("built when enabled"),
                &mut emit,
            ),
            _ => unreachable!("structural checks run through run_check"),
        }
    }
}

/// A stuck-at fault on a gate output that the static pass proves no input
/// vector can ever expose: the classic KMS signal that the node carries
/// removable redundancy (the paper's Section III connection between
/// untestable faults and removable logic).
fn check_redundant_node(net: &Network, analysis: &StaticAnalysis<'_>, emit: &mut Emit) {
    for id in net.gate_ids() {
        if !net.gate(id).kind.is_logic() {
            continue;
        }
        for stuck in [false, true] {
            if let Some(witness) = analysis.prove_untestable(FaultRef::Output(id), stuck) {
                emit(
                    Site::Gate(id),
                    format!(
                        "stuck-at-{} on gate {} is untestable ({})",
                        u8::from(stuck),
                        label(net, id),
                        witness.kind()
                    ),
                    Some(
                        "redundancy_removal can replace the node with the stuck value and simplify",
                    ),
                );
            }
        }
    }
}

/// Node pairs the analysis proved to compute the same (or complementary)
/// function — sharing candidates the netlist pays area and fault surface
/// for twice.
fn check_equivalent_node_pair(net: &Network, analysis: &StaticAnalysis<'_>, emit: &mut Emit) {
    for &(dup, rep) in analysis.classes().structural_pairs() {
        emit(
            Site::Gate(dup),
            format!(
                "gate {} is structurally identical to gate {}",
                label(net, dup),
                label(net, rep)
            ),
            Some("transform::structural_hash shares signature-identical gates"),
        );
    }
    for &(dup, rep, same) in analysis.classes().sat_pairs() {
        emit(
            Site::Gate(dup),
            format!(
                "gate {} is proved {} to gate {} (SAT sweep)",
                label(net, dup),
                if same { "equivalent" } else { "antivalent" },
                label(net, rep)
            ),
            Some("rewire fanout to the representative (inverted for antivalent pairs)"),
        );
    }
}

/// Live logic gates proved to compute a constant function over all inputs.
fn check_constant_node(net: &Network, analysis: &StaticAnalysis<'_>, emit: &mut Emit) {
    for id in net.gate_ids() {
        if !net.gate(id).kind.is_logic() {
            continue;
        }
        if let Some(v) = analysis.node_constant(id) {
            emit(
                Site::Gate(id),
                format!(
                    "gate {} computes the constant {} on every input",
                    label(net, id),
                    u8::from(v)
                ),
                Some("replace the gate with a constant and run transform::propagate_constants"),
            );
        }
    }
}

/// Output-stuck-at faults only the dataflow tier proves untestable:
/// findings the `redundant-node` check (implication tier) cannot reach,
/// justified by a cofactor constant, a CODC cut, or a recursive-learning
/// refutation. Faults the implication tier already proves are skipped so
/// the two checks partition the redundancies instead of double-reporting.
fn check_dataflow_untestable(
    net: &Network,
    analysis: &StaticAnalysis<'_>,
    dataflow: &DataflowAnalysis<'_>,
    emit: &mut Emit,
) {
    for id in net.gate_ids() {
        if !net.gate(id).kind.is_logic() {
            continue;
        }
        for stuck in [false, true] {
            if analysis
                .prove_untestable(FaultRef::Output(id), stuck)
                .is_some()
            {
                continue;
            }
            if let Some(witness) = dataflow.prove_untestable(analysis, FaultRef::Output(id), stuck)
            {
                emit(
                    Site::Gate(id),
                    format!(
                        "stuck-at-{} on gate {} is untestable by dataflow analysis ({})",
                        u8::from(stuck),
                        label(net, id),
                        witness.kind()
                    ),
                    Some(
                        "redundancy_removal can replace the node with the stuck value and simplify",
                    ),
                );
            }
        }
    }
}

/// Live logic gates the CODC pass proves unobservable: every path to a
/// primary output crosses a connection whose sibling pin holds a proved
/// constant at the controlling value, with every blocker outside the
/// gate's own fanout cone (the cone-safe verdict — in-cone blockers can
/// flip together with the gate and do not mask it). Gates with no
/// structural path to any output at all are the `unreachable` check's
/// findings and are skipped here.
fn check_codc_unobservable(net: &Network, dataflow: &DataflowAnalysis<'_>, emit: &mut Emit) {
    // Structural reverse-reachability from the primary outputs.
    let n = net.num_gate_slots();
    let mut reaches_po = vec![false; n];
    let mut stack: Vec<GateId> = net.outputs().iter().map(|o| o.src).collect();
    while let Some(g) = stack.pop() {
        if !live(net, g) || std::mem::replace(&mut reaches_po[g.index()], true) {
            continue;
        }
        for pin in &net.gate(g).pins {
            stack.push(pin.src);
        }
    }
    for id in net.gate_ids() {
        if !net.gate(id).kind.is_logic() || !reaches_po[id.index()] {
            continue;
        }
        if dataflow.codc_unobservable(id).is_some() {
            emit(
                Site::Gate(id),
                format!(
                    "gate {} is unobservable: every path to a primary output is \
                     blocked by a proved-constant controlling side input",
                    label(net, id)
                ),
                Some("the gate and its exclusive fanin cone are dead logic; sweep them"),
            );
        }
    }
}

type Emit<'a> = dyn FnMut(Site, String, Option<&str>) + 'a;

/// `true` when `src` names a live gate of `net`.
fn live(net: &Network, src: GateId) -> bool {
    src.index() < net.num_gate_slots() && !net.gate(src).is_dead()
}

/// `"g3"`, or `"g3 ('sum')"` when the gate is named.
fn label(net: &Network, id: GateId) -> String {
    match net.gate(id).name.as_deref() {
        Some(name) => format!("{id} ({name:?})"),
        None => id.to_string(),
    }
}

/// Kahn's algorithm over the live gates, counting only valid edges; any
/// live gate left unprocessed sits on or downstream of a cycle, and the
/// cycle members proper are those whose residual in-degree is nonzero.
fn check_cycle(net: &Network, emit: &mut Emit) {
    let n = net.num_gate_slots();
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut live_count = 0usize;
    for id in net.gate_ids() {
        live_count += 1;
        for pin in &net.gate(id).pins {
            if live(net, pin.src) {
                indeg[id.index()] += 1;
                adj[pin.src.index()].push(id.index());
            }
        }
    }
    let mut stack: Vec<usize> = net
        .gate_ids()
        .map(GateId::index)
        .filter(|&i| indeg[i] == 0)
        .collect();
    let mut popped = 0usize;
    while let Some(i) = stack.pop() {
        popped += 1;
        for &j in &adj[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                stack.push(j);
            }
        }
    }
    if popped == live_count {
        return;
    }
    let members: Vec<GateId> = net.gate_ids().filter(|&id| indeg[id.index()] > 0).collect();
    let shown: Vec<String> = members.iter().take(8).map(|&id| label(net, id)).collect();
    let ellipsis = if members.len() > 8 { ", ..." } else { "" };
    emit(
        members.first().map_or(Site::Network, |&id| Site::Gate(id)),
        format!(
            "combinational cycle through {} gate(s): {}{ellipsis}",
            members.len(),
            shown.join(", "),
        ),
        Some("combinational networks must be DAGs (Definition 4.1); break the feedback loop"),
    );
}

fn check_undriven(net: &Network, emit: &mut Emit) {
    for id in net.gate_ids() {
        for (p, pin) in net.gate(id).pins.iter().enumerate() {
            if !live(net, pin.src) {
                let state = if pin.src.index() < net.num_gate_slots() {
                    "dead"
                } else {
                    "out-of-range"
                };
                emit(
                    Site::Conn(ConnRef::new(id, p)),
                    format!(
                        "pin {p} of gate {} is driven by {state} gate {}",
                        label(net, id),
                        pin.src
                    ),
                    Some("rewire the connection before killing its driver, or run Network::compact only after all references are fixed"),
                );
            }
        }
    }
    for (i, o) in net.outputs().iter().enumerate() {
        if !live(net, o.src) {
            emit(
                Site::Output(i),
                format!(
                    "primary output {:?} is driven by dead or out-of-range gate {}",
                    o.name, o.src
                ),
                Some(
                    "use Network::set_output_src to retarget the output before deleting its driver",
                ),
            );
        }
    }
}

fn check_arity(net: &Network, emit: &mut Emit) {
    for id in net.gate_ids() {
        let g = net.gate(id);
        let expected: Option<&str> = match g.kind {
            GateKind::Input | GateKind::Const(_) => (!g.pins.is_empty()).then_some("no pins"),
            GateKind::Not | GateKind::Buf => (g.pins.len() != 1).then_some("exactly one pin"),
            GateKind::Mux => (g.pins.len() != 3).then_some("exactly three pins"),
            _ => g.pins.is_empty().then_some("at least one pin"),
        };
        if let Some(expected) = expected {
            emit(
                Site::Gate(id),
                format!(
                    "{} gate {} has {} pin(s), expected {expected}",
                    g.kind,
                    label(net, id),
                    g.pins.len()
                ),
                Some("gates must be built through Network::add_gate, which enforces arity"),
            );
        }
    }
}

fn check_duplicate_name(net: &Network, emit: &mut Emit) {
    let mut by_name: HashMap<&str, Vec<GateId>> = HashMap::new();
    for id in net.gate_ids() {
        if let Some(name) = net.gate(id).name.as_deref() {
            by_name.entry(name).or_default().push(id);
        }
    }
    let mut dup_gates: Vec<(&str, Vec<GateId>)> = by_name
        .into_iter()
        .filter(|(_, ids)| ids.len() > 1)
        .collect();
    dup_gates.sort_by_key(|(_, ids)| ids[0]);
    for (name, ids) in dup_gates {
        let shown: Vec<String> = ids.iter().map(ToString::to_string).collect();
        emit(
            Site::Gate(ids[1]),
            format!(
                "{} live gates share the name {name:?}: {}",
                ids.len(),
                shown.join(", ")
            ),
            Some("names must be unique for gate_by_name/name_map lookups; rename with Network::set_gate_name"),
        );
    }
    let mut out_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, o) in net.outputs().iter().enumerate() {
        out_by_name.entry(o.name.as_str()).or_default().push(i);
    }
    let mut dup_outs: Vec<(&str, Vec<usize>)> = out_by_name
        .into_iter()
        .filter(|(_, idxs)| idxs.len() > 1)
        .collect();
    dup_outs.sort_by_key(|(_, idxs)| idxs[0]);
    for (name, idxs) in dup_outs {
        emit(
            Site::Output(idxs[1]),
            format!(
                "{} primary outputs share the name {name:?} (indices {idxs:?})",
                idxs.len()
            ),
            Some("output names must be unique for output_by_name and BLIF round-trips"),
        );
    }
}

/// Cross-checks the derived fanout table against the pin edge list: the two
/// must be exact inverses, and dead gates must have no fanout entries.
///
/// `Network::fanouts` is computed from the pins, so a mismatch means either
/// a pin into a dead gate (the tombstone still "drives" something) or a
/// regression in the fanout derivation itself.
fn check_fanout(net: &Network, emit: &mut Emit) {
    // fanouts() indexes its table by raw pin source ids, so an out-of-range
    // pin would panic inside it; `undriven` owns that finding.
    let any_oob = net.gate_ids().any(|id| {
        net.gate(id)
            .pins
            .iter()
            .any(|p| p.src.index() >= net.num_gate_slots())
    });
    if any_oob {
        return;
    }
    let fo = net.fanouts();
    let mut edges_seen = 0usize;
    for (i, conns) in fo.iter().enumerate() {
        let src = GateId::from_index(i);
        if net.gate(src).is_dead() && !conns.is_empty() {
            emit(
                Site::Gate(src),
                format!(
                    "dead gate {src} still drives {} connection(s), e.g. {}",
                    conns.len(),
                    conns[0]
                ),
                Some("kill a gate only after rewiring its fanout (transform::substitute_gate)"),
            );
        }
        for &conn in conns {
            edges_seen += 1;
            let sink = net.gate(conn.gate);
            let consistent =
                !sink.is_dead() && conn.pin < sink.pins.len() && sink.pins[conn.pin].src == src;
            if !consistent {
                emit(
                    Site::Conn(conn),
                    format!(
                        "fanout table says gate {src} drives connection {conn}, but the pin list disagrees"
                    ),
                    Some("the fanout table is derived from the pins; this indicates netlist corruption"),
                );
            }
        }
    }
    let edges_declared: usize = net.gate_ids().map(|id| net.gate(id).pins.len()).sum();
    if edges_seen != edges_declared {
        emit(
            Site::Network,
            format!(
                "fanout table holds {edges_seen} edge(s) but live gates declare {edges_declared} pin(s)"
            ),
            Some("the fanout table is derived from the pins; this indicates netlist corruption"),
        );
    }
}

/// Delays are constructed through [`kms_netlist::Delay::new`], which rejects
/// negative values, so this check is defensive: it guards against future
/// constructors (deserialization, FFI) that might bypass that assertion.
fn check_delay(net: &Network, emit: &mut Emit) {
    for id in net.gate_ids() {
        let g = net.gate(id);
        if g.delay.units() < 0 {
            emit(
                Site::Gate(id),
                format!("gate {} has negative delay {}", label(net, id), g.delay),
                Some("delays are nonnegative quantities (Definition 4.1)"),
            );
        }
        for (p, pin) in g.pins.iter().enumerate() {
            if pin.wire_delay.units() < 0 {
                emit(
                    Site::Conn(ConnRef::new(id, p)),
                    format!(
                        "connection {} has negative wire delay {}",
                        ConnRef::new(id, p),
                        pin.wire_delay
                    ),
                    Some("delays are nonnegative quantities (Definition 4.1)"),
                );
            }
        }
    }
}

/// Reverse reachability from the primary outputs; live logic gates the walk
/// never reaches contribute nothing to any output function.
fn check_unreachable(net: &Network, emit: &mut Emit) {
    let mut reached = vec![false; net.num_gate_slots()];
    let mut stack: Vec<GateId> = Vec::new();
    for o in net.outputs() {
        if live(net, o.src) && !reached[o.src.index()] {
            reached[o.src.index()] = true;
            stack.push(o.src);
        }
    }
    while let Some(id) = stack.pop() {
        for pin in &net.gate(id).pins {
            if live(net, pin.src) && !reached[pin.src.index()] {
                reached[pin.src.index()] = true;
                stack.push(pin.src);
            }
        }
    }
    for id in net.gate_ids() {
        if net.gate(id).kind.is_logic() && !reached[id.index()] {
            emit(
                Site::Gate(id),
                format!(
                    "{} gate {} has no path to any primary output",
                    net.gate(id).kind,
                    label(net, id)
                ),
                Some("transform::sweep removes logic that reaches no output"),
            );
        }
    }
}

fn check_not_simple(net: &Network, emit: &mut Emit) {
    for id in net.gate_ids() {
        let kind = net.gate(id).kind;
        if !kind.is_source() && !kind.is_simple() {
            emit(
                Site::Gate(id),
                format!(
                    "gate {} is a complex {kind}; the KMS algorithm requires simple gates (Section VI)",
                    label(net, id)
                ),
                Some("lower complex gates first with transform::decompose_to_simple"),
            );
        }
    }
}

/// Section VII conventions: constants should be propagated, and the
/// single-input gates that constant propagation leaves behind should be
/// zero-delay buffers, not degenerate ANDs/ORs.
fn check_const_anomaly(net: &Network, emit: &mut Emit) {
    for id in net.gate_ids() {
        let g = net.gate(id);
        let degenerate = matches!(
            g.kind,
            GateKind::And
                | GateKind::Or
                | GateKind::Nand
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
        ) && g.pins.len() == 1;
        if degenerate {
            emit(
                Site::Gate(id),
                format!(
                    "single-input {} gate {} should be a zero-delay buffer (paper Section VII)",
                    g.kind,
                    label(net, id)
                ),
                Some("transform::propagate_constants rewrites degenerate gates"),
            );
        }
        for (p, pin) in g.pins.iter().enumerate() {
            if live(net, pin.src) {
                if let GateKind::Const(v) = net.gate(pin.src).kind {
                    emit(
                        Site::Conn(ConnRef::new(id, p)),
                        format!(
                            "constant {} feeds pin {p} of {} gate {}; the constant was not propagated",
                            u8::from(v),
                            g.kind,
                            label(net, id)
                        ),
                        Some("run transform::propagate_constants to fold constants through the logic"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_network, CheckId, LintConfig, NetworkLint};
    use kms_netlist::{Delay, GateKind, Pin};

    fn checks_fired(net: &Network) -> Vec<CheckId> {
        let mut ids: Vec<CheckId> = net.lint().diagnostics.iter().map(|d| d.check).collect();
        ids.dedup();
        ids
    }

    #[test]
    fn cycle_detected() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::And, &[a, a], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Or, &[g1, a], Delay::UNIT);
        net.add_output("y", g2);
        net.gate_mut(g1).pins[1] = Pin::new(g2); // g1 <-> g2 feedback
        let report = net.lint();
        let d = report.by_check(CheckId::Cycle).next().expect("cycle fires");
        assert!(d.message.contains("combinational cycle through 2 gate(s)"));
        assert_eq!(d.site, Site::Gate(g1));
    }

    #[test]
    fn undriven_pin_and_output() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        net.add_output("y", g);
        net.add_output("z", GateId::from_index(99)); // out of range
        net.gate_mut(g).pins[0] = Pin::new(GateId::from_index(42));
        let report = net.lint();
        let sites: Vec<Site> = report.by_check(CheckId::Undriven).map(|d| d.site).collect();
        assert!(sites.contains(&Site::Conn(ConnRef::new(g, 0))));
        assert!(sites.contains(&Site::Output(1)));
    }

    #[test]
    fn arity_violations_per_kind() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::And, &[a, a], Delay::UNIT);
        net.add_output("y", g);
        net.gate_mut(g).kind = GateKind::Mux;
        let report = net.lint();
        let d = report.by_check(CheckId::Arity).next().expect("arity fires");
        assert!(d.message.contains("expected exactly three pins"));

        net.gate_mut(g).kind = GateKind::And;
        net.gate_mut(a).pins.push(Pin::new(g)); // input with a pin
        assert!(net
            .lint()
            .by_check(CheckId::Arity)
            .any(|d| d.site == Site::Gate(a)));
    }

    #[test]
    fn duplicate_names_on_gates_and_outputs() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Buf, &[g1], Delay::UNIT);
        net.set_gate_name(g1, "n");
        net.set_gate_name(g2, "n");
        net.add_output("y", g2);
        net.add_output("y", g1);
        let report = net.lint();
        let dups: Vec<&Diagnostic> = report.by_check(CheckId::DuplicateName).collect();
        assert_eq!(dups.len(), 2);
        assert_eq!(dups[0].site, Site::Gate(g2));
        assert_eq!(dups[1].site, Site::Output(1));
    }

    #[test]
    fn fanout_consistent_on_wellformed_net() {
        // Gates can only be killed through crate-private transforms, so the
        // tombstone-with-fanout case is exercised from the netlist side
        // (tests/lint_diagnostics.rs drives it through transform APIs);
        // here we pin down that a well-formed net passes the conservation
        // and inverse checks.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Buf, &[g1], Delay::UNIT);
        net.add_output("y", g2);
        assert_eq!(net.lint().by_check(CheckId::Fanout).count(), 0);
    }

    #[test]
    fn unreachable_gate_warns() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        net.add_output("y", g);
        let orphan = net.add_gate(GateKind::Buf, &[a], Delay::UNIT);
        let report = net.lint();
        let d = report
            .by_check(CheckId::Unreachable)
            .next()
            .expect("unreachable fires");
        assert_eq!(d.site, Site::Gate(orphan));
        // Unused *inputs* are interface, not dead logic: no warning for `a`
        // itself even when nothing reads it.
        let mut net2 = Network::new("t2");
        net2.add_input("unused");
        let b = net2.add_input("b");
        let g2 = net2.add_gate(GateKind::Buf, &[b], Delay::UNIT);
        net2.add_output("y", g2);
        assert_eq!(net2.lint().by_check(CheckId::Unreachable).count(), 0);
    }

    #[test]
    fn not_simple_warns_on_complex_kinds() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let x = net.add_gate(GateKind::Xor, &[a, b], Delay::UNIT);
        let m = net.add_gate(GateKind::Mux, &[a, b, x], Delay::UNIT);
        net.add_output("y", m);
        let report = net.lint();
        assert_eq!(report.by_check(CheckId::NotSimple).count(), 2);
    }

    #[test]
    fn nand_nor_are_not_simple_here() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::Nand, &[a, a], Delay::UNIT);
        net.add_output("y", g);
        assert_eq!(net.lint().by_check(CheckId::NotSimple).count(), 1);
    }

    #[test]
    fn const_anomalies() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let one = net.add_const(true);
        let g = net.add_gate(GateKind::And, &[a, one], Delay::UNIT); // const feeds logic
        let d = net.add_gate(GateKind::Or, &[g], Delay::UNIT); // degenerate single-input OR
        net.add_output("y", d);
        let report = net.lint();
        let msgs: Vec<&str> = report
            .by_check(CheckId::ConstAnomaly)
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("was not propagated")));
        assert!(msgs.iter().any(|m| m.contains("zero-delay buffer")));
    }

    #[test]
    fn zero_delay_buffer_is_not_an_anomaly() {
        // The Section VII convention itself: constants propagated, survivor
        // kept as a zero-delay buffer. This must lint clean.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let buf = net.add_gate(GateKind::Buf, &[a], Delay::ZERO);
        net.add_output("y", buf);
        assert!(net.lint().is_clean());
    }

    #[test]
    fn disabled_check_does_not_fire() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        net.add_gate(GateKind::Not, &[a], Delay::UNIT); // unreachable
        let config = LintConfig::default().with_level(CheckId::Unreachable, crate::Level::Allow);
        assert!(lint_network(&net, &config).is_clean());
    }

    #[test]
    fn semantic_checks_fire_when_enabled() {
        // y = (a & b) | (b & a): the second AND is a (commuted) structural
        // duplicate of the first, so equivalent-node-pair fires; both ANDs
        // also make each OR-side fault dominated — but at minimum the pair
        // itself must be reported. Default config: semantic tier off.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::And, &[b, a], Delay::UNIT);
        let o = net.add_gate(GateKind::Or, &[g1, g2], Delay::UNIT);
        net.add_output("y", o);
        assert_eq!(
            net.lint().by_check(CheckId::EquivalentNodePair).count(),
            0,
            "semantic tier must be off by default"
        );
        let config = LintConfig::default()
            .with_level(CheckId::EquivalentNodePair, crate::Level::Warn)
            .with_level(CheckId::RedundantNode, crate::Level::Warn);
        let report = lint_network(&net, &config);
        // Two findings: g2 is a structural duplicate of g1, and the SAT
        // sweep proves o = g1|g2 = g1 equivalent to g1 itself.
        assert_eq!(report.by_check(CheckId::EquivalentNodePair).count(), 2);
        // x OR x == x: each OR input connection is individually redundant,
        // and the analysis proves the dominated output faults untestable.
        assert!(report.by_check(CheckId::RedundantNode).count() >= 1);
    }

    #[test]
    fn constant_node_check_fires() {
        // g = a & !a == 0.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let na = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let g = net.add_gate(GateKind::And, &[a, na], Delay::UNIT);
        let b = net.add_input("b");
        let o = net.add_gate(GateKind::Or, &[g, b], Delay::UNIT);
        net.add_output("y", o);
        let config = LintConfig::default().with_level(CheckId::ConstantNode, crate::Level::Warn);
        let report = lint_network(&net, &config);
        let d = report
            .by_check(CheckId::ConstantNode)
            .next()
            .expect("constant-node fires");
        assert_eq!(d.site, Site::Gate(g));
        assert!(d.message.contains("constant 0"), "{}", d.message);
    }

    #[test]
    fn dataflow_tier_fires_beyond_implic() {
        // g = !c fans out to two ANDs, each blocked by a proved-constant
        // 0 sibling. No single dominator chain covers both paths, so the
        // implication tier's detection-condition rule cannot refute g's
        // output faults — only the backward CODC pass proves g
        // unobservable. `dataflow-untestable` and `codc-unobservable`
        // must both fire on g.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let na = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let k1 = net.add_gate(GateKind::And, &[a, na], Delay::UNIT); // == 0
        let nb = net.add_gate(GateKind::Not, &[b], Delay::UNIT);
        let k2 = net.add_gate(GateKind::And, &[b, nb], Delay::UNIT); // == 0
        let g = net.add_gate(GateKind::Not, &[c], Delay::UNIT);
        let m1 = net.add_gate(GateKind::And, &[g, k1], Delay::UNIT);
        let m2 = net.add_gate(GateKind::And, &[g, k2], Delay::UNIT);
        let o = net.add_gate(GateKind::Or, &[m1, m2, d], Delay::UNIT);
        net.add_output("y", o);
        let config = LintConfig::default()
            .with_level(CheckId::DataflowUntestable, crate::Level::Warn)
            .with_level(CheckId::CodcUnobservable, crate::Level::Warn);
        let report = lint_network(&net, &config);
        assert!(
            report
                .by_check(CheckId::DataflowUntestable)
                .any(|diag| diag.site == Site::Gate(g)),
            "{}",
            report.to_text()
        );
        assert!(
            report
                .by_check(CheckId::CodcUnobservable)
                .any(|diag| diag.site == Site::Gate(g)),
            "{}",
            report.to_text()
        );
        // Default config: the dataflow tier is off.
        assert_eq!(
            net.lint().by_check(CheckId::DataflowUntestable).count(),
            0,
            "dataflow tier must be off by default"
        );
    }

    #[test]
    fn semantic_tier_skipped_on_broken_graph() {
        // An undriven pin makes the graph unsafe for the analysis engines;
        // the semantic tier must stay silent rather than panic.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        net.add_output("y", g1);
        net.add_output("z", g2);
        net.gate_mut(g2).pins[0] = Pin::new(GateId::from_index(99));
        let config = LintConfig::default()
            .with_level(CheckId::EquivalentNodePair, crate::Level::Warn)
            .with_level(CheckId::ConstantNode, crate::Level::Warn)
            .with_level(CheckId::RedundantNode, crate::Level::Warn);
        let report = lint_network(&net, &config);
        assert!(report.by_check(CheckId::Undriven).count() > 0);
        assert_eq!(report.by_check(CheckId::EquivalentNodePair).count(), 0);
        assert_eq!(report.by_check(CheckId::ConstantNode).count(), 0);
        assert_eq!(report.by_check(CheckId::RedundantNode).count(), 0);
    }

    #[test]
    fn multiple_defects_all_reported() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let x = net.add_gate(GateKind::Xor, &[a, a], Delay::UNIT);
        net.add_output("y", x);
        net.add_output("z", GateId::from_index(77));
        let fired = checks_fired(&net);
        assert!(fired.contains(&CheckId::Undriven));
        assert!(fired.contains(&CheckId::NotSimple));
    }
}
