use std::fmt;

use crate::delay::Delay;
use crate::gate::{ConnRef, GateId, GateKind};
use crate::network::Network;

/// A path through a network (Definition 4.2): an alternating sequence of
/// connections and gates `{c0, g0, c1, g1, …, cn, gn, c(n+1)}`.
///
/// The representation stores the connections `c0…cn` as [`ConnRef`]s — the
/// gates along the path are the sinks of those connections — plus the index
/// of the primary output the final connection `c(n+1)` reaches. Defining
/// paths over *connections* rather than gates keeps two parallel connections
/// between the same pair of gates distinct, exactly as the paper requires.
///
/// An *IO-path* (Section VII) starts at a primary input and ends at a
/// primary output; [`Path::validate`] checks the chaining and
/// [`Path::is_io_path`] the endpoints.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Path {
    conns: Vec<ConnRef>,
    po: usize,
}

impl Path {
    /// Creates a path from its connections and terminating primary-output
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `conns` is empty. Use [`Path::validate`] to check chaining
    /// against a network.
    pub fn new(conns: Vec<ConnRef>, po: usize) -> Self {
        assert!(!conns.is_empty(), "a path has at least one connection");
        Path { conns, po }
    }

    /// The connections `c0…cn` along the path.
    pub fn conns(&self) -> &[ConnRef] {
        &self.conns
    }

    /// The first connection `c0` — the edge whose stuck-at faults the KMS
    /// algorithm targets ("the first edge of P", Section VI).
    pub fn first_conn(&self) -> ConnRef {
        self.conns[0]
    }

    /// The index of the primary output this path terminates at.
    pub fn output_index(&self) -> usize {
        self.po
    }

    /// The gates `g0…gn` along the path, in order.
    pub fn gates(&self) -> impl Iterator<Item = GateId> + '_ {
        self.conns.iter().map(|c| c.gate)
    }

    /// The last gate `gn` on the path.
    pub fn last_gate(&self) -> GateId {
        self.conns.last().expect("paths are nonempty").gate
    }

    /// The gate driving `c0` (a primary input for IO-paths).
    pub fn source(&self, net: &Network) -> GateId {
        net.pin(self.conns[0]).src
    }

    /// The number of gates along the path.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// `false`; paths are never empty (kept for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The length `d(P) = Σ d(gi) + Σ d(ci)` of the path (Definition 4.6).
    ///
    /// The final connection to the primary output is treated as delay-free.
    pub fn length(&self, net: &Network) -> Delay {
        self.conns
            .iter()
            .map(|&c| net.pin(c).wire_delay + net.gate(c.gate).delay)
            .sum()
    }

    /// The event time `τi` at which the propagating event reaches the output
    /// of gate `gi` (the i-th gate along the path), counted from the path's
    /// source. Used by viability analysis (Section V.1).
    pub fn event_time(&self, net: &Network, i: usize) -> Delay {
        self.conns[..=i]
            .iter()
            .map(|&c| net.pin(c).wire_delay + net.gate(c.gate).delay)
            .sum()
    }

    /// The side-inputs to the path (Definition 4.10): for every gate `gi`
    /// along the path, the input connections of `gi` other than `ci`.
    ///
    /// Returned as `(i, conn)` pairs where `i` is the position of the gate
    /// along the path.
    pub fn side_inputs(&self, net: &Network) -> Vec<(usize, ConnRef)> {
        let mut out = Vec::new();
        for (i, &c) in self.conns.iter().enumerate() {
            let fanin = net.gate(c.gate).fanin();
            for pin in 0..fanin {
                if pin != c.pin {
                    out.push((i, ConnRef::new(c.gate, pin)));
                }
            }
        }
        out
    }

    /// Checks that consecutive connections chain (`ci+1`'s source is `gi`),
    /// that every referenced gate is live, and that the terminating output
    /// index exists and is driven by the last gate.
    pub fn validate(&self, net: &Network) -> bool {
        for w in self.conns.windows(2) {
            let (prev, next) = (w[0], w[1]);
            if next.gate.index() >= net.num_gate_slots()
                || net.gate(next.gate).is_dead()
                || next.pin >= net.gate(next.gate).fanin()
                || net.pin(next).src != prev.gate
            {
                return false;
            }
        }
        let first = self.conns[0];
        if first.gate.index() >= net.num_gate_slots()
            || net.gate(first.gate).is_dead()
            || first.pin >= net.gate(first.gate).fanin()
        {
            return false;
        }
        self.po < net.outputs().len() && net.outputs()[self.po].src == self.last_gate()
    }

    /// `true` if the path starts at a primary input (and, by construction,
    /// ends at a primary output): an IO-path in the sense of Section VII.
    pub fn is_io_path(&self, net: &Network) -> bool {
        net.gate(self.source(net)).kind == GateKind::Input && self.validate(net)
    }

    /// A stable, human-readable rendering: `pi -> g3.0 -> g7.1 -> po[k]`.
    pub fn describe(&self, net: &Network) -> String {
        let mut s = String::new();
        let src = self.source(net);
        let src_name = net
            .gate(src)
            .name
            .clone()
            .unwrap_or_else(|| src.to_string());
        s.push_str(&src_name);
        for c in &self.conns {
            s.push_str(" -> ");
            s.push_str(&c.to_string());
        }
        s.push_str(&format!(" -> po[{}]", self.po));
        s
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conns.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " -> po[{}]", self.po)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, GateKind, Network};

    /// a ──┬─ g1(and) ── g2(or) ── y
    /// b ──┘             │
    /// c ────────────────┘
    fn chain() -> (Network, Path) {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::new(2));
        let g2 = net.add_gate(GateKind::Or, &[g1, c], Delay::new(3));
        net.add_output("y", g2);
        let path = Path::new(vec![ConnRef::new(g1, 0), ConnRef::new(g2, 0)], 0);
        (net, path)
    }

    #[test]
    fn validate_and_endpoints() {
        let (net, path) = chain();
        assert!(path.validate(&net));
        assert!(path.is_io_path(&net));
        assert_eq!(path.source(&net), net.input_by_name("a").unwrap());
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn length_sums_gate_and_wire_delays() {
        let (net, path) = chain();
        assert_eq!(path.length(&net), Delay::new(5));
        assert_eq!(path.event_time(&net, 0), Delay::new(2));
        assert_eq!(path.event_time(&net, 1), Delay::new(5));
    }

    #[test]
    fn side_inputs_enumerated() {
        let (net, path) = chain();
        let sides = path.side_inputs(&net);
        assert_eq!(sides.len(), 2);
        // Side input of g1 is pin 1 (input b); of g2 is pin 1 (input c).
        assert_eq!(sides[0].0, 0);
        assert_eq!(sides[0].1.pin, 1);
        assert_eq!(sides[1].0, 1);
        assert_eq!(sides[1].1.pin, 1);
    }

    #[test]
    fn broken_chain_rejected() {
        let (net, path) = chain();
        let bad = Path::new(vec![path.conns()[1], path.conns()[0]], 0);
        assert!(!bad.validate(&net));
    }

    #[test]
    fn wrong_output_rejected() {
        let (net, path) = chain();
        let bad = Path::new(path.conns()[..1].to_vec(), 0);
        // Ends at g1, which does not drive output 0.
        assert!(!bad.validate(&net));
    }

    #[test]
    fn describe_mentions_source_name() {
        let (net, path) = chain();
        let d = path.describe(&net);
        assert!(d.starts_with('a'), "{d}");
        assert!(d.contains("po[0]"));
        assert!(!path.is_empty());
        assert!(path.to_string().contains("->"));
    }
}
