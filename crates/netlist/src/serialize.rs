//! Exact, lossless text serialization of a [`Network`].
//!
//! [`Network::dump`] is a human-readable view in topological order; it
//! drops tombstones and is unsuitable for reconstructing a network whose
//! gate ids must survive (transform bookkeeping, fault sites, and
//! checkpoint state all reference arena indices). This module is the
//! machine-exact counterpart: every arena slot — dead tombstones
//! included — plus the input list, output list, and constant cache
//! round-trips bit-identically, so a deserialized network is
//! indistinguishable from the original to every consumer in the
//! workspace. The `kms --checkpoint` / `--resume` flow is the primary
//! client.
//!
//! The format is line-based. Names are escaped (`\s` space, `\n`
//! newline, `\\` backslash, `\e` empty, `\d` literal dash) so the
//! field separator stays a plain space.

use std::fmt::Write as _;

use crate::error::NetlistError;
use crate::gate::{GateId, GateKind, Pin};
use crate::network::{Gate, Network, Output};
use crate::Delay;

/// Escapes a string into a single space-free token (inverse:
/// [`unescape_token`]). The empty string and the literal `-` (used as a
/// "no value" marker by callers) get dedicated escapes.
pub fn escape_token(s: &str) -> String {
    if s.is_empty() {
        return "\\e".to_string();
    }
    if s == "-" {
        return "\\d".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_token`]; `None` on a malformed escape.
pub fn unescape_token(s: &str) -> Option<String> {
    if s == "\\e" {
        return Some(String::new());
    }
    if s == "\\d" {
        return Some("-".to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            's' => out.push(' '),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

fn bad(context: impl Into<String>) -> NetlistError {
    NetlistError::ParseFailed {
        context: context.into(),
    }
}

fn parse_usize(tok: &str, what: &str) -> Result<usize, NetlistError> {
    tok.parse().map_err(|_| bad(format!("bad {what}: {tok:?}")))
}

fn parse_i64(tok: &str, what: &str) -> Result<i64, NetlistError> {
    tok.parse().map_err(|_| bad(format!("bad {what}: {tok:?}")))
}

fn parse_opt_id(tok: &str, what: &str) -> Result<Option<GateId>, NetlistError> {
    if tok == "-" {
        return Ok(None);
    }
    Ok(Some(GateId::from_index(parse_usize(tok, what)?)))
}

impl Network {
    /// Serializes the network losslessly, tombstones and constant cache
    /// included, such that [`Network::deserialize_exact`] reconstructs an
    /// arena-identical network (same gate ids, same dead slots, same
    /// declaration orders). Gate and input names must not contain
    /// carriage returns; all other characters round-trip.
    pub fn serialize_exact(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "netlist-exact v1 {}", escape_token(&self.name));
        let _ = writeln!(s, "gates {}", self.gates.len());
        for g in &self.gates {
            let _ = write!(
                s,
                "g {} {} {} {} {}",
                g.kind.mnemonic(),
                g.delay.units(),
                if g.dead { "dead" } else { "live" },
                g.name.as_deref().map_or("-".to_string(), escape_token),
                g.pins.len()
            );
            for p in &g.pins {
                let _ = write!(s, " {}:{}", p.src.index(), p.wire_delay.units());
            }
            s.push('\n');
        }
        let _ = write!(s, "inputs {}", self.inputs.len());
        for i in &self.inputs {
            let _ = write!(s, " {}", i.index());
        }
        s.push('\n');
        let _ = writeln!(s, "outputs {}", self.outputs.len());
        for o in &self.outputs {
            let _ = writeln!(s, "o {} {}", o.src.index(), escape_token(&o.name));
        }
        let _ = writeln!(
            s,
            "constcache {} {}",
            self.const_cache[0].map_or("-".to_string(), |id| id.index().to_string()),
            self.const_cache[1].map_or("-".to_string(), |id| id.index().to_string()),
        );
        s.push_str("end\n");
        s
    }

    /// Reconstructs a network from [`Network::serialize_exact`] output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ParseFailed`] on any malformed or
    /// truncated input. No structural validation is performed beyond
    /// parsing — the serialization is trusted to come from
    /// `serialize_exact`; call [`Network::validate`] afterwards if the
    /// source is untrusted.
    pub fn deserialize_exact(text: &str) -> Result<Network, NetlistError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty input"))?;
        let mut h = header.split(' ');
        if (h.next(), h.next()) != (Some("netlist-exact"), Some("v1")) {
            return Err(bad(format!("unrecognized header {header:?}")));
        }
        let name = unescape_token(h.next().ok_or_else(|| bad("header missing name"))?)
            .ok_or_else(|| bad("bad name escape"))?;

        let gates_line = lines.next().ok_or_else(|| bad("missing gates line"))?;
        let count = gates_line
            .strip_prefix("gates ")
            .ok_or_else(|| bad(format!("expected gates line, got {gates_line:?}")))?;
        let count = parse_usize(count, "gate count")?;
        let mut gates = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| bad("truncated gate list"))?;
            let mut f = line.split(' ');
            if f.next() != Some("g") {
                return Err(bad(format!("expected gate line, got {line:?}")));
            }
            let kind = f.next().ok_or_else(|| bad("gate line missing kind"))?;
            let kind =
                GateKind::from_mnemonic(kind).ok_or_else(|| bad(format!("bad kind {kind:?}")))?;
            let delay = parse_i64(
                f.next().ok_or_else(|| bad("gate line missing delay"))?,
                "delay",
            )?;
            let dead = match f.next() {
                Some("live") => false,
                Some("dead") => true,
                other => return Err(bad(format!("bad liveness field {other:?}"))),
            };
            let name_tok = f.next().ok_or_else(|| bad("gate line missing name"))?;
            let name = if name_tok == "-" {
                None
            } else {
                Some(unescape_token(name_tok).ok_or_else(|| bad("bad gate name escape"))?)
            };
            let npins = parse_usize(
                f.next().ok_or_else(|| bad("gate line missing pin count"))?,
                "pin count",
            )?;
            let mut pins = Vec::with_capacity(npins);
            for _ in 0..npins {
                let tok = f.next().ok_or_else(|| bad("truncated pin list"))?;
                let (src, wd) = tok
                    .split_once(':')
                    .ok_or_else(|| bad(format!("bad pin {tok:?}")))?;
                pins.push(Pin::with_delay(
                    GateId::from_index(parse_usize(src, "pin source")?),
                    Delay::new(parse_i64(wd, "wire delay")?),
                ));
            }
            if f.next().is_some() {
                return Err(bad(format!("trailing fields on gate line {line:?}")));
            }
            gates.push(Gate {
                kind,
                pins,
                delay: Delay::new(delay),
                name,
                dead,
            });
        }

        let inputs_line = lines.next().ok_or_else(|| bad("missing inputs line"))?;
        let mut f = inputs_line.split(' ');
        if f.next() != Some("inputs") {
            return Err(bad(format!("expected inputs line, got {inputs_line:?}")));
        }
        let n_inputs = parse_usize(
            f.next().ok_or_else(|| bad("inputs line missing count"))?,
            "input count",
        )?;
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            let tok = f.next().ok_or_else(|| bad("truncated input list"))?;
            inputs.push(GateId::from_index(parse_usize(tok, "input id")?));
        }

        let outputs_line = lines.next().ok_or_else(|| bad("missing outputs line"))?;
        let n_outputs = outputs_line
            .strip_prefix("outputs ")
            .ok_or_else(|| bad(format!("expected outputs line, got {outputs_line:?}")))?;
        let n_outputs = parse_usize(n_outputs, "output count")?;
        let mut outputs = Vec::with_capacity(n_outputs);
        for _ in 0..n_outputs {
            let line = lines.next().ok_or_else(|| bad("truncated output list"))?;
            let mut f = line.split(' ');
            if f.next() != Some("o") {
                return Err(bad(format!("expected output line, got {line:?}")));
            }
            let src = GateId::from_index(parse_usize(
                f.next().ok_or_else(|| bad("output line missing source"))?,
                "output source",
            )?);
            let name = unescape_token(f.next().ok_or_else(|| bad("output line missing name"))?)
                .ok_or_else(|| bad("bad output name escape"))?;
            outputs.push(Output { name, src });
        }

        let cc_line = lines.next().ok_or_else(|| bad("missing constcache line"))?;
        let mut f = cc_line.split(' ');
        if f.next() != Some("constcache") {
            return Err(bad(format!("expected constcache line, got {cc_line:?}")));
        }
        let c0 = parse_opt_id(
            f.next().ok_or_else(|| bad("constcache missing slot 0"))?,
            "constcache slot",
        )?;
        let c1 = parse_opt_id(
            f.next().ok_or_else(|| bad("constcache missing slot 1"))?,
            "constcache slot",
        )?;

        if lines.next() != Some("end") {
            return Err(bad("missing end marker"));
        }
        Ok(Network {
            name,
            gates,
            inputs,
            outputs,
            const_cache: [c0, c1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform;

    fn sample() -> Network {
        let mut net = Network::new("round trip"); // space in the name
        let a = net.add_input("a");
        let b = net.add_input("in b");
        let t = net.add_gate(GateKind::And, &[a, b], Delay::new(2));
        let y = net.add_gate_pins(
            GateKind::Or,
            vec![Pin::new(a), Pin::with_delay(t, Delay::new(3))],
            Delay::UNIT,
        );
        net.add_const(true);
        net.set_gate_name(t, "-"); // the dash needs its escape
        net.add_output("y", y);
        net.add_output("spaced out", t);
        net
    }

    #[test]
    fn round_trip_is_exact() {
        let net = sample();
        let text = net.serialize_exact();
        let back = Network::deserialize_exact(&text).unwrap();
        assert_eq!(text, back.serialize_exact());
        assert_eq!(net.dump(), back.dump());
        assert_eq!(net.name(), back.name());
        back.validate().unwrap();
    }

    #[test]
    fn tombstones_and_const_cache_survive() {
        let mut net = sample();
        // Kill a gate via constant propagation to create a tombstone and
        // exercise the const cache.
        let y = net.output_by_name("y").unwrap();
        let src = net.outputs()[y].src;
        transform::set_conn_const(&mut net, crate::ConnRef::new(src, 0), true);
        assert!(net.num_gate_slots() > net.gate_ids().count(), "tombstone");
        let back = Network::deserialize_exact(&net.serialize_exact()).unwrap();
        assert_eq!(net.serialize_exact(), back.serialize_exact());
        assert_eq!(net.num_gate_slots(), back.num_gate_slots());
        // Adding a constant to the copy reuses the cached slot, exactly
        // as it would on the original.
        let mut a = net.clone();
        let mut b = back;
        assert_eq!(a.add_const(true), b.add_const(true));
        assert_eq!(a.add_const(false), b.add_const(false));
        assert_eq!(a.serialize_exact(), b.serialize_exact());
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "bogus",
            "netlist-exact v2 x",
            "netlist-exact v1 n\ngates 1\n",
            "netlist-exact v1 n\ngates 0\ninputs 0\noutputs 0\nconstcache - -\n",
            "netlist-exact v1 n\ngates 1\ng wat 0 live - 0\ninputs 0\noutputs 0\nconstcache - -\nend\n",
        ] {
            assert!(
                matches!(
                    Network::deserialize_exact(text),
                    Err(NetlistError::ParseFailed { .. })
                ),
                "{text:?}"
            );
        }
    }

    #[test]
    fn token_escaping_round_trips() {
        for s in ["", "-", "a b", "back\\slash", "new\nline", "plain"] {
            let esc = escape_token(s);
            assert!(!esc.contains(' ') && !esc.contains('\n'), "{esc:?}");
            assert_eq!(unescape_token(&esc).as_deref(), Some(s));
        }
        assert_eq!(unescape_token("\\x"), None);
        assert_eq!(unescape_token("trailing\\"), None);
    }
}
