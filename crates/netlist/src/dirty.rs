//! Structured change tracking for network transforms.
//!
//! The KMS loop is intrinsically incremental: each iteration duplicates a
//! handful of gates and folds a constant through a small cone, leaving the
//! rest of the network untouched. A [`DirtySet`] is the contract between
//! the transforms in [`crate::transform`] and the incremental consumers in
//! `kms-timing` (arrival/required maintenance, best-first heap repair): it
//! records every gate whose *structure* — kind, pin list, delay, or
//! liveness — changed during a transform step, plus whether any primary
//! output was retargeted.
//!
//! The contract is conservative over-approximation: a gate listed here may
//! turn out unchanged, but a gate whose structure changed **must** be
//! listed (under-reporting makes incremental timing silently wrong; the
//! `debug-invariants` cross-checks and the property tests in `kms-timing`
//! enforce the contract against a from-scratch recompute).

use crate::gate::GateId;

/// The set of gates (and outputs) touched by one or more transform steps.
///
/// Gates appear in at most three roles: `changed` (live gate rewritten in
/// place), `added` (freshly minted slot), `removed` (killed / tombstoned).
/// A gate may appear in several roles across a batch — e.g. rewritten by
/// constant propagation and then swept — consumers treat the union of all
/// three lists as "structurally dirty".
#[derive(Clone, Debug, Default)]
pub struct DirtySet {
    changed: Vec<GateId>,
    added: Vec<GateId>,
    removed: Vec<GateId>,
    outputs_changed: bool,
}

impl DirtySet {
    /// An empty dirty set.
    pub fn new() -> Self {
        DirtySet::default()
    }

    /// Records an in-place rewrite of a live gate (kind, pins, or delay).
    pub fn mark_changed(&mut self, g: GateId) {
        self.changed.push(g);
    }

    /// Records a freshly created gate slot.
    pub fn mark_added(&mut self, g: GateId) {
        self.added.push(g);
    }

    /// Records a killed gate.
    pub fn mark_removed(&mut self, g: GateId) {
        self.removed.push(g);
    }

    /// Records that at least one primary output was retargeted.
    pub fn mark_outputs(&mut self) {
        self.outputs_changed = true;
    }

    /// Records every slot appended to the arena between two
    /// [`crate::Network::num_gate_slots`] snapshots as `added` (gate ids
    /// are dense and never reused, so the delta is exactly the fresh
    /// gates — duplicates, constants — a transform minted).
    pub fn note_appended(&mut self, slots_before: usize, slots_after: usize) {
        for i in slots_before..slots_after {
            self.added.push(GateId::from_index(i));
        }
    }

    /// Appends everything recorded in `other`.
    pub fn merge(&mut self, other: &DirtySet) {
        self.changed.extend_from_slice(&other.changed);
        self.added.extend_from_slice(&other.added);
        self.removed.extend_from_slice(&other.removed);
        self.outputs_changed |= other.outputs_changed;
    }

    /// Sorts and deduplicates each role list.
    pub fn normalize(&mut self) {
        for v in [&mut self.changed, &mut self.added, &mut self.removed] {
            v.sort_unstable();
            v.dedup();
        }
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
            && !self.outputs_changed
    }

    /// Live gates rewritten in place.
    pub fn changed(&self) -> &[GateId] {
        &self.changed
    }

    /// Freshly created gates.
    pub fn added(&self) -> &[GateId] {
        &self.added
    }

    /// Killed gates.
    pub fn removed(&self) -> &[GateId] {
        &self.removed
    }

    /// `true` if any primary output was retargeted.
    pub fn outputs_changed(&self) -> bool {
        self.outputs_changed
    }

    /// Every structurally dirty gate, across all three roles (may repeat a
    /// gate that played several roles).
    pub fn touched(&self) -> impl Iterator<Item = GateId> + '_ {
        self.changed
            .iter()
            .chain(self.added.iter())
            .chain(self.removed.iter())
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_and_merge() {
        let mut d = DirtySet::new();
        assert!(d.is_empty());
        d.mark_changed(GateId::from_index(3));
        d.mark_changed(GateId::from_index(3));
        d.mark_removed(GateId::from_index(1));
        d.note_appended(5, 7);
        let mut e = DirtySet::new();
        e.mark_outputs();
        d.merge(&e);
        d.normalize();
        assert_eq!(d.changed(), &[GateId::from_index(3)]);
        assert_eq!(d.added(), &[GateId::from_index(5), GateId::from_index(6)]);
        assert_eq!(d.removed(), &[GateId::from_index(1)]);
        assert!(d.outputs_changed());
        assert_eq!(d.touched().count(), 4);
        assert!(!d.is_empty());
    }
}
