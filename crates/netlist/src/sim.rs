//! Bit-parallel and three-valued simulation of [`Network`]s.
//!
//! Word-level simulation evaluates 64 input vectors at once and backs the
//! exhaustive and random equivalence checks used throughout the test suite.
//! Three-valued simulation implements the paper's cube semantics
//! (Definition 4.5: "unspecified values in the function are assumed to be
//! undefined values", i.e. `X`).

use std::fmt;
use std::str::FromStr;

use crate::gate::{GateId, GateKind};
use crate::network::Network;

/// A ternary logic value: 0, 1, or unknown.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unspecified (the paper's `X`).
    X,
}

impl Value {
    /// Converts a Boolean to a known value.
    pub fn known(b: bool) -> Value {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }

    /// The Boolean behind a known value, or `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Value::Zero => Some(false),
            Value::One => Some(true),
            Value::X => None,
        }
    }

    /// Ternary negation (`X` stays `X`).
    ///
    /// Deliberately named like `std::ops::Not::not`; implementing the
    /// operator trait would hide the three-valued semantics at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Value {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
            Value::X => Value::X,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Zero => f.write_str("0"),
            Value::One => f.write_str("1"),
            Value::X => f.write_str("x"),
        }
    }
}

/// An input cube: one ternary value per primary input, in input order
/// (Definition 4.5). Applying a cube leaves `X` inputs undefined.
///
/// ```
/// use kms_netlist::{Cube, Value};
/// let c: Cube = "1x0".parse()?;
/// assert_eq!(c.get(0), Value::One);
/// assert_eq!(c.get(1), Value::X);
/// # Ok::<(), kms_netlist::ParseCubeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cube(Vec<Value>);

impl Cube {
    /// The all-`X` cube over `n` inputs.
    pub fn all_x(n: usize) -> Cube {
        Cube(vec![Value::X; n])
    }

    /// A cube from explicit values.
    pub fn new(values: Vec<Value>) -> Cube {
        Cube(values)
    }

    /// A fully specified cube (a minterm) from Booleans.
    pub fn minterm(bits: &[bool]) -> Cube {
        Cube(bits.iter().map(|&b| Value::known(b)).collect())
    }

    /// The number of inputs this cube covers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the cube covers no inputs.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value assigned to input `i`.
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }

    /// Sets the value of input `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        self.0[i] = v;
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// `true` if every input is specified (the cube is a minterm).
    pub fn is_minterm(&self) -> bool {
        self.0.iter().all(|v| *v != Value::X)
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.0 {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`Cube`] from text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseCubeError(pub char);

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cube character {:?}", self.0)
    }
}

impl std::error::Error for ParseCubeError {}

impl FromStr for Cube {
    type Err = ParseCubeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .map(|c| match c {
                '0' => Ok(Value::Zero),
                '1' => Ok(Value::One),
                'x' | 'X' | '-' => Ok(Value::X),
                other => Err(ParseCubeError(other)),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Cube)
    }
}

/// Word-parallel evaluation of one gate: bit `k` of the result is the
/// gate's output for the `k`-th of 64 packed input vectors. Exposed for
/// cone-restricted fault simulators that splice their own fanin words.
pub fn eval_gate_words(kind: GateKind, pins: &[u64]) -> u64 {
    match kind {
        GateKind::Input => unreachable!("inputs are seeded"),
        GateKind::Const(false) => 0,
        GateKind::Const(true) => !0,
        GateKind::Buf => pins[0],
        GateKind::Not => !pins[0],
        GateKind::And => pins.iter().fold(!0u64, |a, &b| a & b),
        GateKind::Or => pins.iter().fold(0u64, |a, &b| a | b),
        GateKind::Nand => !pins.iter().fold(!0u64, |a, &b| a & b),
        GateKind::Nor => !pins.iter().fold(0u64, |a, &b| a | b),
        GateKind::Xor => pins.iter().fold(0u64, |a, &b| a ^ b),
        GateKind::Xnor => !pins.iter().fold(0u64, |a, &b| a ^ b),
        GateKind::Mux => (pins[0] & pins[2]) | (!pins[0] & pins[1]),
    }
}

fn eval_gate3(kind: GateKind, pins: &[Value]) -> Value {
    match kind {
        GateKind::Input => unreachable!("inputs are seeded"),
        GateKind::Const(b) => Value::known(b),
        GateKind::Buf => pins[0],
        GateKind::Not => pins[0].not(),
        GateKind::And | GateKind::Nand => {
            let mut out = Value::One;
            for &p in pins {
                out = match (out, p) {
                    (Value::Zero, _) | (_, Value::Zero) => Value::Zero,
                    (Value::X, _) | (_, Value::X) => Value::X,
                    _ => Value::One,
                };
                if out == Value::Zero {
                    break;
                }
            }
            if kind == GateKind::Nand {
                out.not()
            } else {
                out
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut out = Value::Zero;
            for &p in pins {
                out = match (out, p) {
                    (Value::One, _) | (_, Value::One) => Value::One,
                    (Value::X, _) | (_, Value::X) => Value::X,
                    _ => Value::Zero,
                };
                if out == Value::One {
                    break;
                }
            }
            if kind == GateKind::Nor {
                out.not()
            } else {
                out
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut out = Value::Zero;
            for &p in pins {
                out = match (out, p) {
                    (Value::X, _) | (_, Value::X) => Value::X,
                    (a, b) => Value::known((a == Value::One) ^ (b == Value::One)),
                };
            }
            if kind == GateKind::Xnor {
                out.not()
            } else {
                out
            }
        }
        GateKind::Mux => match pins[0] {
            Value::Zero => pins[1],
            Value::One => pins[2],
            Value::X => {
                if pins[1] == pins[2] && pins[1] != Value::X {
                    pins[1]
                } else {
                    Value::X
                }
            }
        },
    }
}

impl Network {
    /// Evaluates all gates for 64 input vectors at once. `input_words[i]`
    /// supplies the 64 values of primary input `i`; bit `k` of every word
    /// belongs to vector `k`. Returns one word per gate slot (dead gates
    /// yield 0).
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the number of inputs.
    pub fn node_words(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            input_words.len(),
            self.inputs().len(),
            "one word per primary input required"
        );
        let mut vals = vec![0u64; self.num_gate_slots()];
        for (i, &id) in self.inputs().iter().enumerate() {
            vals[id.index()] = input_words[i];
        }
        let mut pin_buf = Vec::new();
        for id in self.topo_order() {
            let g = self.gate(id);
            if g.kind == GateKind::Input {
                continue;
            }
            pin_buf.clear();
            pin_buf.extend(g.pins.iter().map(|p| vals[p.src.index()]));
            vals[id.index()] = eval_gate_words(g.kind, &pin_buf);
        }
        vals
    }

    /// Evaluates the primary outputs for 64 input vectors at once.
    pub fn eval_words(&self, input_words: &[u64]) -> Vec<u64> {
        let vals = self.node_words(input_words);
        self.outputs().iter().map(|o| vals[o.src.index()]).collect()
    }

    /// Evaluates the primary outputs for a single Boolean input vector.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the number of inputs.
    pub fn eval_bool(&self, bits: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = bits.iter().map(|&b| if b { !0 } else { 0 }).collect();
        self.eval_words(&words)
            .into_iter()
            .map(|w| w & 1 != 0)
            .collect()
    }

    /// Evaluates all gates under an input [`Cube`] with three-valued
    /// semantics: unspecified inputs propagate as `X` (Definition 4.5).
    ///
    /// # Panics
    ///
    /// Panics if the cube's width differs from the number of inputs.
    pub fn node_values3(&self, cube: &Cube) -> Vec<Value> {
        assert_eq!(cube.len(), self.inputs().len(), "cube width mismatch");
        let mut vals = vec![Value::X; self.num_gate_slots()];
        for (i, &id) in self.inputs().iter().enumerate() {
            vals[id.index()] = cube.get(i);
        }
        let mut pin_buf = Vec::new();
        for id in self.topo_order() {
            let g = self.gate(id);
            if g.kind == GateKind::Input {
                continue;
            }
            pin_buf.clear();
            pin_buf.extend(g.pins.iter().map(|p| vals[p.src.index()]));
            vals[id.index()] = eval_gate3(g.kind, &pin_buf);
        }
        vals
    }

    /// Evaluates the primary outputs under a cube with `X` propagation.
    pub fn eval3(&self, cube: &Cube) -> Vec<Value> {
        let vals = self.node_values3(cube);
        self.outputs().iter().map(|o| vals[o.src.index()]).collect()
    }

    /// The value of a single gate under a cube.
    pub fn gate_value3(&self, cube: &Cube, gate: GateId) -> Value {
        self.node_values3(cube)[gate.index()]
    }

    /// Exhaustively checks functional equivalence with `other` over all
    /// `2^n` input vectors. Both networks must have the same number of
    /// inputs and outputs; inputs are matched positionally.
    ///
    /// Returns the first differing minterm if the networks differ.
    ///
    /// # Panics
    ///
    /// Panics if input/output counts differ, or if `n > 24` (use the
    /// SAT-based miter in `kms-sat` for larger circuits).
    pub fn exhaustive_equiv(&self, other: &Network) -> Result<(), Vec<bool>> {
        let n = self.inputs().len();
        assert_eq!(n, other.inputs().len(), "input count mismatch");
        assert_eq!(
            self.outputs().len(),
            other.outputs().len(),
            "output count mismatch"
        );
        assert!(n <= 24, "exhaustive check limited to 24 inputs");
        let total: u64 = 1u64 << n;
        let mut base: u64 = 0;
        while base < total {
            let mut words = vec![0u64; n];
            for (i, w) in words.iter_mut().enumerate() {
                if i < 6 {
                    // Bit k of the word is bit i of the vector index.
                    *w = PATTERNS[i];
                } else if (base >> i) & 1 == 1 {
                    *w = !0;
                }
            }
            let lanes = (total - base).min(64) as u32;
            let mask = if lanes == 64 {
                !0u64
            } else {
                (1u64 << lanes) - 1
            };
            let a = self.eval_words(&words);
            let b = other.eval_words(&words);
            for (o, (&wa, &wb)) in a.iter().zip(b.iter()).enumerate() {
                let diff = (wa ^ wb) & mask;
                if diff != 0 {
                    let lane = diff.trailing_zeros() as u64;
                    let v = base + lane;
                    let _ = o;
                    return Err((0..n).map(|i| (v >> i) & 1 == 1).collect());
                }
            }
            base += 64;
        }
        Ok(())
    }

    /// Checks equivalence on `vectors` random input vectors (a cheap
    /// smoke-test; not a proof). Returns a counterexample if found.
    pub fn random_equiv(
        &self,
        other: &Network,
        vectors: usize,
        seed: u64,
    ) -> Result<(), Vec<bool>> {
        let n = self.inputs().len();
        assert_eq!(n, other.inputs().len(), "input count mismatch");
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let rounds = vectors.div_ceil(64);
        for _ in 0..rounds {
            let words: Vec<u64> = (0..n).map(|_| next()).collect();
            let a = self.eval_words(&words);
            let b = other.eval_words(&words);
            for (&wa, &wb) in a.iter().zip(b.iter()) {
                let diff = wa ^ wb;
                if diff != 0 {
                    let lane = diff.trailing_zeros();
                    return Err(words.iter().map(|w| (w >> lane) & 1 == 1).collect());
                }
            }
        }
        Ok(())
    }
}

/// The classic 64-lane enumeration patterns: bit `k` of `PATTERNS[i]` equals
/// bit `i` of `k`.
const PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, GateKind, Network};

    fn mux_net() -> Network {
        let mut net = Network::new("mux");
        let s = net.add_input("s");
        let d0 = net.add_input("d0");
        let d1 = net.add_input("d1");
        let m = net.add_gate(GateKind::Mux, &[s, d0, d1], Delay::new(2));
        net.add_output("y", m);
        net
    }

    #[test]
    fn mux_semantics() {
        let net = mux_net();
        assert_eq!(net.eval_bool(&[false, true, false]), vec![true]);
        assert_eq!(net.eval_bool(&[true, true, false]), vec![false]);
        assert_eq!(net.eval_bool(&[true, false, true]), vec![true]);
    }

    #[test]
    fn three_valued_mux() {
        let net = mux_net();
        // Unknown select, equal data → known output.
        let c: Cube = "x11".parse().unwrap();
        assert_eq!(net.eval3(&c), vec![Value::One]);
        let c: Cube = "x10".parse().unwrap();
        assert_eq!(net.eval3(&c), vec![Value::X]);
    }

    #[test]
    fn three_valued_controlling_shortcut() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        net.add_output("y", g);
        // 0 AND x = 0 even though one input is unknown.
        let c: Cube = "0x".parse().unwrap();
        assert_eq!(net.eval3(&c), vec![Value::Zero]);
        let c: Cube = "1x".parse().unwrap();
        assert_eq!(net.eval3(&c), vec![Value::X]);
    }

    #[test]
    fn xor_parity_words() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g = net.add_gate(GateKind::Xor, &[a, b, c], Delay::UNIT);
        net.add_output("y", g);
        for v in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            let expect = bits.iter().filter(|&&b| b).count() % 2 == 1;
            assert_eq!(net.eval_bool(&bits), vec![expect]);
        }
    }

    #[test]
    fn exhaustive_equiv_detects_difference() {
        let mut n1 = Network::new("a");
        let a = n1.add_input("a");
        let b = n1.add_input("b");
        let g = n1.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        n1.add_output("y", g);

        let mut n2 = Network::new("b");
        let a = n2.add_input("a");
        let b = n2.add_input("b");
        let g = n2.add_gate(GateKind::Or, &[a, b], Delay::UNIT);
        n2.add_output("y", g);

        let err = n1.exhaustive_equiv(&n2).unwrap_err();
        // AND and OR differ exactly when inputs differ.
        assert_ne!(err[0], err[1]);
        assert!(n1.exhaustive_equiv(&n1.clone()).is_ok());
    }

    #[test]
    fn demorgan_equivalence() {
        // NOT(a AND b) == (NOT a) OR (NOT b), checked exhaustively.
        let mut n1 = Network::new("nand");
        let a = n1.add_input("a");
        let b = n1.add_input("b");
        let g = n1.add_gate(GateKind::Nand, &[a, b], Delay::UNIT);
        n1.add_output("y", g);

        let mut n2 = Network::new("demorgan");
        let a = n2.add_input("a");
        let b = n2.add_input("b");
        let na = n2.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let nb = n2.add_gate(GateKind::Not, &[b], Delay::UNIT);
        let g = n2.add_gate(GateKind::Or, &[na, nb], Delay::UNIT);
        n2.add_output("y", g);

        n1.exhaustive_equiv(&n2).unwrap();
        n1.random_equiv(&n2, 512, 42).unwrap();
    }

    #[test]
    fn exhaustive_patterns_cover_all_minterms() {
        // A 7-input AND is 1 on exactly one minterm; the checker must see it.
        let mut n1 = Network::new("and7");
        let ins: Vec<_> = (0..7).map(|i| n1.add_input(format!("i{i}"))).collect();
        let g = n1.add_gate(GateKind::And, &ins, Delay::UNIT);
        n1.add_output("y", g);

        let mut n2 = Network::new("const0");
        for i in 0..7 {
            n2.add_input(format!("i{i}"));
        }
        let c = n2.add_const(false);
        n2.add_output("y", c);

        let err = n1.exhaustive_equiv(&n2).unwrap_err();
        assert!(err.iter().all(|&b| b), "only the all-ones minterm differs");
    }

    #[test]
    fn cube_parse_and_display() {
        let c: Cube = "01x-".parse().unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(3), Value::X);
        assert_eq!(c.to_string(), "01xx");
        assert!("012".parse::<Cube>().is_err());
        assert!(!c.is_minterm());
        assert!(Cube::minterm(&[true, false]).is_minterm());
    }
}
