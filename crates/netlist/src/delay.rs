use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use crate::gate::GateKind;

/// A delay quantity in abstract integer time units.
///
/// The paper's results are proved for a timing model with arbitrary gate and
/// connection delays (Definition 4.1); all of the paper's measurements use
/// small integer delays (unit delays for Table I, AND/OR = 1 and XOR/MUX = 2
/// for the Section III case study). Integer units keep comparisons exact.
///
/// ```
/// use kms_netlist::Delay;
/// assert_eq!(Delay::new(3) + Delay::new(5), Delay::new(8));
/// assert!(Delay::ZERO < Delay::new(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Delay(i64);

impl Delay {
    /// The zero delay (wires, duplicated-gate stubs, constants).
    pub const ZERO: Delay = Delay(0);

    /// One abstract time unit.
    pub const UNIT: Delay = Delay(1);

    /// Creates a delay of `units` abstract time units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative; delays are nonnegative quantities.
    pub fn new(units: i64) -> Self {
        assert!(units >= 0, "delays must be nonnegative, got {units}");
        Delay(units)
    }

    /// The raw number of time units.
    pub fn units(self) -> i64 {
        self.0
    }

    /// `true` if this delay is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of `self` and `other`.
    pub fn max(self, other: Delay) -> Delay {
        Delay(self.0.max(other.0))
    }
}

impl Add for Delay {
    type Output = Delay;
    fn add(self, rhs: Delay) -> Delay {
        Delay(self.0 + rhs.0)
    }
}

impl AddAssign for Delay {
    fn add_assign(&mut self, rhs: Delay) {
        self.0 += rhs.0;
    }
}

impl Sub for Delay {
    type Output = Delay;
    /// Saturating difference: never produces a negative delay.
    fn sub(self, rhs: Delay) -> Delay {
        Delay((self.0 - rhs.0).max(0))
    }
}

impl Sum for Delay {
    fn sum<I: Iterator<Item = Delay>>(iter: I) -> Delay {
        iter.fold(Delay::ZERO, Add::add)
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Delay {
    fn from(units: i64) -> Self {
        Delay::new(units)
    }
}

/// Assigns a delay to each gate kind when constructing or re-timing a
/// network.
///
/// * [`DelayModel::Unit`] — every logic gate costs one unit. This is the
///   model used for Table I of the paper.
/// * [`DelayModel::PerKind`] — AND/OR/NAND/NOR cost 1, inverters and buffers
///   cost `inv`, XOR/XNOR/MUX cost 2. With `inv = 0` and the defaults this
///   is the Section III model (AND/OR = 1, XOR/MUX = 2).
///
/// ```
/// use kms_netlist::{DelayModel, GateKind, Delay};
/// let m = DelayModel::section3();
/// assert_eq!(m.gate_delay(GateKind::And), Delay::new(1));
/// assert_eq!(m.gate_delay(GateKind::Xor), Delay::new(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DelayModel {
    /// Every logic gate (including inverters and buffers) costs one unit.
    #[default]
    Unit,
    /// Two-input simple gates cost `and_or`, inverters/buffers cost `inv`,
    /// XOR/XNOR/MUX cost `xor_mux`.
    PerKind {
        /// Delay of AND, OR, NAND, NOR gates.
        and_or: Delay,
        /// Delay of NOT and BUF gates.
        inv: Delay,
        /// Delay of XOR, XNOR and MUX gates.
        xor_mux: Delay,
    },
}

impl DelayModel {
    /// The Section III model: AND/OR = 1, XOR/MUX = 2, inverters free.
    ///
    /// The paper assigns "a gate delay of 1 for the AND and OR gates and
    /// gate delays of 2 for the XOR and MUX gates"; inverters are not
    /// mentioned and are treated as free, which matches the path lengths
    /// reported in Section III.
    pub fn section3() -> Self {
        DelayModel::PerKind {
            and_or: Delay::new(1),
            inv: Delay::ZERO,
            xor_mux: Delay::new(2),
        }
    }

    /// The delay this model assigns to a gate of kind `kind`.
    ///
    /// Inputs and constants always have zero delay.
    pub fn gate_delay(self, kind: GateKind) -> Delay {
        match kind {
            GateKind::Input | GateKind::Const(_) => Delay::ZERO,
            _ => match self {
                DelayModel::Unit => Delay::UNIT,
                DelayModel::PerKind {
                    and_or,
                    inv,
                    xor_mux,
                } => match kind {
                    GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => and_or,
                    GateKind::Not | GateKind::Buf => inv,
                    GateKind::Xor | GateKind::Xnor | GateKind::Mux => xor_mux,
                    GateKind::Input | GateKind::Const(_) => Delay::ZERO,
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Delay::new(2) + Delay::new(3), Delay::new(5));
        assert_eq!(Delay::new(2) - Delay::new(3), Delay::ZERO);
        assert_eq!(Delay::new(7) - Delay::new(3), Delay::new(4));
        assert_eq!(
            [Delay::new(1), Delay::new(2), Delay::new(3)]
                .into_iter()
                .sum::<Delay>(),
            Delay::new(6)
        );
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_rejected() {
        let _ = Delay::new(-1);
    }

    #[test]
    fn unit_model() {
        assert_eq!(DelayModel::Unit.gate_delay(GateKind::And), Delay::UNIT);
        assert_eq!(DelayModel::Unit.gate_delay(GateKind::Mux), Delay::UNIT);
        assert_eq!(DelayModel::Unit.gate_delay(GateKind::Input), Delay::ZERO);
        assert_eq!(
            DelayModel::Unit.gate_delay(GateKind::Const(true)),
            Delay::ZERO
        );
    }

    #[test]
    fn section3_model() {
        let m = DelayModel::section3();
        assert_eq!(m.gate_delay(GateKind::Or), Delay::new(1));
        assert_eq!(m.gate_delay(GateKind::Mux), Delay::new(2));
        assert_eq!(m.gate_delay(GateKind::Not), Delay::ZERO);
    }

    #[test]
    fn display_and_ord() {
        assert_eq!(Delay::new(11).to_string(), "11");
        assert!(Delay::new(8) < Delay::new(11));
        assert_eq!(Delay::new(4).max(Delay::new(9)), Delay::new(9));
    }
}
