//! Transitive-fanin queries and cone extraction.
//!
//! Section III of the paper analyzes the single-output subcircuit that
//! implements the carry bit `c2` of the 2-bit carry-skip adder (Fig. 4);
//! [`extract_cone`] produces exactly that kind of slice: a standalone
//! network containing the transitive fanin of selected outputs, with only
//! the primary inputs in their support.

use std::collections::HashMap;

use crate::gate::{GateId, GateKind};
use crate::network::Network;

/// Marks the transitive fanin of `roots` (inclusive). Returned as a bitmap
/// indexed by gate arena index.
pub fn transitive_fanin(net: &Network, roots: &[GateId]) -> Vec<bool> {
    let mut seen = vec![false; net.num_gate_slots()];
    let mut stack: Vec<GateId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        for p in &net.gate(id).pins {
            stack.push(p.src);
        }
    }
    seen
}

/// `true` if `a` is in the transitive fanin of `b` (or equal to it).
pub fn is_in_tfi(net: &Network, a: GateId, b: GateId) -> bool {
    transitive_fanin(net, &[b])[a.index()]
}

/// Extracts the logic cone of the selected primary outputs as a standalone
/// network. Only primary inputs in the cone's support are kept, in their
/// original relative order. Returns the new network and the mapping from
/// old gate ids to new ones.
///
/// # Panics
///
/// Panics if any index in `outputs` is out of range.
///
/// ```
/// use kms_netlist::{Network, GateKind, Delay, cone};
/// let mut net = Network::new("two");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let g = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
/// let h = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
/// net.add_output("y0", g);
/// net.add_output("y1", h);
/// let (cone, _map) = cone::extract_cone(&net, &[1]);
/// assert_eq!(cone.inputs().len(), 1); // only `a` supports y1
/// assert_eq!(cone.outputs().len(), 1);
/// ```
pub fn extract_cone(net: &Network, outputs: &[usize]) -> (Network, HashMap<GateId, GateId>) {
    let roots: Vec<GateId> = outputs.iter().map(|&i| net.outputs()[i].src).collect();
    let keep = transitive_fanin(net, &roots);
    let mut out = Network::new(format!("{}_cone", net.name()));
    let mut map: HashMap<GateId, GateId> = HashMap::new();
    // Inputs first, preserving declaration order.
    for &i in net.inputs() {
        if keep[i.index()] {
            let name = net.gate(i).name.clone().unwrap_or_else(|| i.to_string());
            map.insert(i, out.add_input(name));
        }
    }
    for id in net.topo_order() {
        if !keep[id.index()] || map.contains_key(&id) {
            continue;
        }
        let g = net.gate(id);
        let new_id = match g.kind {
            GateKind::Input => continue, // unsupported inputs are dropped
            GateKind::Const(v) => out.add_const(v),
            kind => {
                let pins = g
                    .pins
                    .iter()
                    .map(|p| crate::Pin::with_delay(map[&p.src], p.wire_delay))
                    .collect();
                out.add_gate_pins(kind, pins, g.delay)
            }
        };
        if let Some(name) = &g.name {
            out.set_gate_name(new_id, name.clone());
        }
        map.insert(id, new_id);
    }
    for &oi in outputs {
        let o = &net.outputs()[oi];
        out.add_output(o.name.clone(), map[&o.src]);
    }
    (out, map)
}

/// Duplicates an entire network (dense, tombstone-free), preserving names
/// and delays. Equivalent to `extract_cone` over all outputs but keeps all
/// primary inputs even if unused.
pub fn duplicate_network(net: &Network) -> Network {
    let mut out = Network::new(net.name());
    let mut map: HashMap<GateId, GateId> = HashMap::new();
    for &i in net.inputs() {
        let name = net.gate(i).name.clone().unwrap_or_else(|| i.to_string());
        map.insert(i, out.add_input(name));
    }
    for id in net.topo_order() {
        if map.contains_key(&id) {
            continue;
        }
        let g = net.gate(id);
        let new_id = match g.kind {
            GateKind::Input => continue,
            GateKind::Const(v) => out.add_const(v),
            kind => {
                let pins = g
                    .pins
                    .iter()
                    .map(|p| crate::Pin::with_delay(map[&p.src], p.wire_delay))
                    .collect();
                out.add_gate_pins(kind, pins, g.delay)
            }
        };
        if let Some(name) = &g.name {
            out.set_gate_name(new_id, name.clone());
        }
        map.insert(id, new_id);
    }
    for o in net.outputs() {
        out.add_output(o.name.clone(), map[&o.src]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, GateKind};

    fn two_cone_net() -> Network {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Or, &[b, c], Delay::UNIT);
        net.add_output("y0", g1);
        net.add_output("y1", g2);
        net
    }

    #[test]
    fn tfi_marks_support() {
        let net = two_cone_net();
        let y0 = net.outputs()[0].src;
        let seen = transitive_fanin(&net, &[y0]);
        let a = net.input_by_name("a").unwrap();
        let c = net.input_by_name("c").unwrap();
        assert!(seen[a.index()]);
        assert!(!seen[c.index()]);
        assert!(is_in_tfi(&net, a, y0));
        assert!(!is_in_tfi(&net, y0, a));
    }

    #[test]
    fn extract_single_cone() {
        let net = two_cone_net();
        let (cone, map) = extract_cone(&net, &[0]);
        cone.validate().unwrap();
        assert_eq!(cone.inputs().len(), 2); // a, b
        assert_eq!(cone.input_names(), vec!["a", "b"]);
        assert_eq!(cone.outputs().len(), 1);
        assert_eq!(cone.simple_gate_count(), 1);
        let g1 = net.outputs()[0].src;
        assert!(map.contains_key(&g1));
        // Function preserved on the shared support.
        assert_eq!(cone.eval_bool(&[true, true]), vec![true]);
        assert_eq!(cone.eval_bool(&[true, false]), vec![false]);
    }

    #[test]
    fn extract_both_cones_is_whole_net() {
        let net = two_cone_net();
        let (cone, _) = extract_cone(&net, &[0, 1]);
        cone.validate().unwrap();
        assert_eq!(cone.inputs().len(), 3);
        net.exhaustive_equiv(&cone).unwrap();
    }

    #[test]
    fn duplicate_is_equivalent() {
        let net = two_cone_net();
        let dup = duplicate_network(&net);
        dup.validate().unwrap();
        net.exhaustive_equiv(&dup).unwrap();
        assert_eq!(dup.simple_gate_count(), net.simple_gate_count());
        assert_eq!(dup.input_names(), net.input_names());
    }
}
