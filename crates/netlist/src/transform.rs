//! Structural transforms used by the KMS algorithm and its substrate.
//!
//! * [`decompose_to_simple`] — lower complex gates (NAND/NOR/XOR/XNOR/MUX)
//!   into simple gates; the last gate in each expansion receives the complex
//!   gate's delay, the others zero (paper, Section VI).
//! * [`set_conn_const`] / [`propagate_constants`] — assert a constant on a
//!   connection (the redundancy-removal rewrite) and propagate it "as far as
//!   possible, removing useless gates" (Fig. 3). A multi-input gate that
//!   becomes single-input is kept as a zero-delay buffer rather than deleted
//!   (Section VII preamble), so gate ids stay stable for path bookkeeping.
//! * [`duplicate_path_prefix`] — the Theorem 7.1 duplication: copy the gates
//!   of a path up to its last multiple-fanout gate and retarget one fanout
//!   edge so that every gate along the new path has fanout exactly one.
//! * [`sweep`] — remove logic that no longer reaches any primary output.

use std::collections::VecDeque;

use crate::delay::Delay;
use crate::dirty::DirtySet;
use crate::error::NetlistError;
use crate::gate::{ConnRef, GateId, GateKind, Pin};
use crate::network::Network;
use crate::path::Path;

/// Lowers every complex gate into simple gates (AND/OR/NOT/BUF).
///
/// The original gate id is preserved as the *last* gate of its expansion so
/// that fanout references and output drivers remain valid. Per the paper,
/// the last gate keeps the complex gate's delay and all helper gates get
/// zero delay, so every path through the expansion has exactly the original
/// length.
///
/// ```
/// use kms_netlist::{Network, GateKind, Delay, transform};
/// let mut net = Network::new("x");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let x = net.add_gate(GateKind::Xor, &[a, b], Delay::new(2));
/// net.add_output("y", x);
/// let orig = net.clone();
/// transform::decompose_to_simple(&mut net);
/// assert!(net.is_simple());
/// orig.exhaustive_equiv(&net).unwrap();
/// ```
pub fn decompose_to_simple(net: &mut Network) {
    // Iterate over a snapshot of ids; new gates are appended and are already
    // simple.
    let ids: Vec<GateId> = net.gate_ids().collect();
    for id in ids {
        let g = net.gate(id);
        if g.kind.is_source() || g.kind.is_simple() {
            continue;
        }
        let kind = g.kind;
        let pins = g.pins.clone();
        let delay = g.delay;
        match kind {
            GateKind::Nand | GateKind::Nor => {
                let inner_kind = if kind == GateKind::Nand {
                    GateKind::And
                } else {
                    GateKind::Or
                };
                let inner = net.add_gate_pins(inner_kind, pins, Delay::ZERO);
                let g = net.gate_mut(id);
                g.kind = GateKind::Not;
                g.pins = vec![Pin::new(inner)];
                g.delay = delay;
            }
            GateKind::Xor | GateKind::Xnor => {
                // Fold pairwise: acc = acc XOR pin, all helpers zero-delay;
                // the last 2-input expansion's OR (or the final NOT for
                // XNOR) reuses `id` and carries `delay`.
                let mut acc = pins[0];
                for (i, &p) in pins.iter().enumerate().skip(1) {
                    let last = i == pins.len() - 1;
                    let na = net.add_gate_pins(GateKind::Not, vec![acc], Delay::ZERO);
                    let nb = net.add_gate_pins(GateKind::Not, vec![p], Delay::ZERO);
                    let t1 = net.add_gate_pins(GateKind::And, vec![acc, Pin::new(nb)], Delay::ZERO);
                    let t2 = net.add_gate_pins(GateKind::And, vec![Pin::new(na), p], Delay::ZERO);
                    if last && kind == GateKind::Xor {
                        let g = net.gate_mut(id);
                        g.kind = GateKind::Or;
                        g.pins = vec![Pin::new(t1), Pin::new(t2)];
                        g.delay = delay;
                        acc = Pin::new(id);
                    } else {
                        let o = net.add_gate(GateKind::Or, &[t1, t2], Delay::ZERO);
                        acc = Pin::new(o);
                    }
                }
                if kind == GateKind::Xnor {
                    let g = net.gate_mut(id);
                    g.kind = GateKind::Not;
                    g.pins = vec![acc];
                    g.delay = delay;
                } else if pins.len() == 1 {
                    // Degenerate single-input XOR: identity.
                    let g = net.gate_mut(id);
                    g.kind = GateKind::Buf;
                    g.pins = vec![acc];
                    g.delay = delay;
                }
            }
            GateKind::Mux => {
                // out = (NOT sel AND d0) OR (sel AND d1); the OR reuses `id`.
                let (sel, d0, d1) = (pins[0], pins[1], pins[2]);
                let ns = net.add_gate_pins(GateKind::Not, vec![sel], Delay::ZERO);
                let t0 = net.add_gate_pins(GateKind::And, vec![Pin::new(ns), d0], Delay::ZERO);
                let t1 = net.add_gate_pins(GateKind::And, vec![sel, d1], Delay::ZERO);
                let g = net.gate_mut(id);
                g.kind = GateKind::Or;
                g.pins = vec![Pin::new(t0), Pin::new(t1)];
                g.delay = delay;
            }
            _ => unreachable!("sources and simple gates skipped above"),
        }
    }
    debug_assert!(net.validate().is_ok());
}

/// The outcome of simplifying one gate during constant propagation.
enum Simplified {
    /// Gate's output is now the given constant.
    Const(bool),
    /// Gate changed in place (pins dropped / kind changed); re-examine
    /// fanouts only if it became constant.
    InPlace,
    /// Nothing to do.
    Unchanged,
}

fn const_of(net: &Network, id: GateId) -> Option<bool> {
    match net.gate(id).kind {
        GateKind::Const(v) => Some(v),
        _ => None,
    }
}

fn simplify_gate(net: &mut Network, id: GateId) -> Simplified {
    let kind = net.gate(id).kind;
    let pins = net.gate(id).pins.clone();
    let consts: Vec<Option<bool>> = pins.iter().map(|p| const_of(net, p.src)).collect();
    if consts.iter().all(|c| c.is_none()) && !matches!(kind, GateKind::Mux) {
        return Simplified::Unchanged;
    }
    match kind {
        GateKind::Input | GateKind::Const(_) => Simplified::Unchanged,
        GateKind::Buf => match consts[0] {
            Some(v) => Simplified::Const(v),
            None => Simplified::Unchanged,
        },
        GateKind::Not => match consts[0] {
            Some(v) => Simplified::Const(!v),
            None => Simplified::Unchanged,
        },
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let (ctrl, inverting) = match kind {
                GateKind::And => (false, false),
                GateKind::Nand => (false, true),
                GateKind::Or => (true, false),
                GateKind::Nor => (true, true),
                _ => unreachable!(),
            };
            if consts.contains(&Some(ctrl)) {
                return Simplified::Const(ctrl ^ inverting);
            }
            // All constant pins carry the noncontrolling value: drop them.
            let keep: Vec<Pin> = pins
                .iter()
                .zip(&consts)
                .filter(|(_, c)| c.is_none())
                .map(|(p, _)| *p)
                .collect();
            if keep.is_empty() {
                // Every input was the noncontrolling constant.
                return Simplified::Const(!ctrl ^ inverting);
            }
            if keep.len() == 1 {
                // Paper, Section VII: a multi-input gate reduced to a single
                // input is kept, with the gate and input-edge delay set to
                // zero — it is "equivalent to a wire". Inverting kinds keep
                // their delay: an inverter is not a wire.
                let g = net.gate_mut(id);
                if inverting {
                    g.kind = GateKind::Not;
                    g.pins = vec![keep[0]];
                } else {
                    g.kind = GateKind::Buf;
                    g.pins = vec![Pin::new(keep[0].src)];
                    g.delay = Delay::ZERO;
                }
                return Simplified::InPlace;
            }
            if keep.len() < pins.len() {
                net.gate_mut(id).pins = keep;
                return Simplified::InPlace;
            }
            Simplified::Unchanged
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut parity = kind == GateKind::Xnor;
            let keep: Vec<Pin> = pins
                .iter()
                .zip(&consts)
                .filter(|(_, c)| {
                    if let Some(v) = c {
                        parity ^= v;
                        false
                    } else {
                        true
                    }
                })
                .map(|(p, _)| *p)
                .collect();
            if keep.is_empty() {
                return Simplified::Const(parity);
            }
            if keep.len() == pins.len() {
                return Simplified::Unchanged;
            }
            let delay = net.gate(id).delay;
            let g = net.gate_mut(id);
            if keep.len() == 1 {
                g.kind = if parity { GateKind::Not } else { GateKind::Buf };
                g.pins = keep;
                g.delay = delay; // an XOR slice is not a wire; keep its cost
            } else {
                g.kind = if parity {
                    GateKind::Xnor
                } else {
                    GateKind::Xor
                };
                g.pins = keep;
            }
            Simplified::InPlace
        }
        GateKind::Mux => {
            match consts[0] {
                Some(sel) => {
                    let data = pins[if sel { 2 } else { 1 }];
                    if let Some(v) = const_of(net, data.src) {
                        return Simplified::Const(v);
                    }
                    let g = net.gate_mut(id);
                    g.kind = GateKind::Buf;
                    g.pins = vec![data];
                    Simplified::InPlace
                }
                None => {
                    if let (Some(v0), Some(v1)) = (consts[1], consts[2]) {
                        if v0 == v1 {
                            return Simplified::Const(v0);
                        }
                        // mux(s, 0, 1) = s; mux(s, 1, 0) = NOT s.
                        let delay = net.gate(id).delay;
                        let g = net.gate_mut(id);
                        g.kind = if v1 { GateKind::Buf } else { GateKind::Not };
                        g.pins = vec![pins[0]];
                        g.delay = delay;
                        return Simplified::InPlace;
                    }
                    if pins[1].src == pins[2].src {
                        let g = net.gate_mut(id);
                        g.kind = GateKind::Buf;
                        g.pins = vec![pins[1]];
                        return Simplified::InPlace;
                    }
                    Simplified::Unchanged
                }
            }
        }
    }
}

/// Propagates constants through the network until a fixpoint, then sweeps
/// unreachable logic. Returns the number of gates that became constant.
///
/// This is the "propagate constant as far as possible, removing useless
/// gates" step of the algorithm in Fig. 3 of the paper. The rewrite rules
/// respect the paper's delay bookkeeping: a gate reduced to a single input
/// becomes a **zero-delay buffer** (its residual delay is dropped), so path
/// lengths through it can only shrink.
pub fn propagate_constants(net: &mut Network) -> usize {
    propagate_constants_tracked(net, &mut DirtySet::new())
}

/// [`propagate_constants`] with change tracking: every gate rewritten
/// (folded to a constant or simplified in place) is recorded in `dirty`,
/// swept gates land in its `removed` role, and any gates minted along the
/// way in its `added` role.
pub fn propagate_constants_tracked(net: &mut Network, dirty: &mut DirtySet) -> usize {
    let slots_before = net.num_gate_slots();
    let mut queue: VecDeque<GateId> = net.gate_ids().collect();
    let mut became_const = 0;
    while let Some(id) = queue.pop_front() {
        if net.gate(id).is_dead() {
            continue;
        }
        match simplify_gate(net, id) {
            Simplified::Const(v) => {
                became_const += 1;
                dirty.mark_changed(id);
                let g = net.gate_mut(id);
                g.kind = GateKind::Const(v);
                g.pins.clear();
                g.delay = Delay::ZERO;
                // Re-examine everything this gate feeds.
                let fo = net.fanouts();
                for conn in &fo[id.index()] {
                    queue.push_back(conn.gate);
                }
            }
            Simplified::InPlace => {
                dirty.mark_changed(id);
                // Pins were dropped; the gate itself may simplify further
                // (e.g. Buf of a constant), so revisit it.
                queue.push_back(id);
            }
            Simplified::Unchanged => {}
        }
    }
    dirty.note_appended(slots_before, net.num_gate_slots());
    sweep_tracked(net, dirty);
    became_const
}

/// Asserts the constant `value` on connection `conn` — the redundancy
/// removal rewrite ("set first edge of P' to either constant 0 or 1",
/// Fig. 3) — then propagates and sweeps.
///
/// # Panics
///
/// Panics if `conn` does not reference a live pin; use
/// [`try_set_conn_const`] for a fallible version.
pub fn set_conn_const(net: &mut Network, conn: ConnRef, value: bool) {
    if let Err(e) = try_set_conn_const(net, conn, value) {
        panic!("{e}");
    }
}

/// [`set_conn_const`] with change tracking (see
/// [`propagate_constants_tracked`] for the recording rules).
///
/// # Panics
///
/// Panics if `conn` does not reference a live pin.
pub fn set_conn_const_tracked(net: &mut Network, conn: ConnRef, value: bool, dirty: &mut DirtySet) {
    if let Err(e) = try_set_conn_const_tracked(net, conn, value, dirty) {
        panic!("{e}");
    }
}

/// Fallible [`set_conn_const`].
///
/// # Errors
///
/// Returns [`NetlistError::BadConn`] if `conn` does not reference a live
/// pin; the network is unchanged on failure.
pub fn try_set_conn_const(
    net: &mut Network,
    conn: ConnRef,
    value: bool,
) -> Result<(), NetlistError> {
    try_set_conn_const_tracked(net, conn, value, &mut DirtySet::new())
}

/// Fallible [`set_conn_const_tracked`].
///
/// # Errors
///
/// Returns [`NetlistError::BadConn`] if `conn` does not reference a live
/// pin; the network (and `dirty`) are unchanged on failure.
pub fn try_set_conn_const_tracked(
    net: &mut Network,
    conn: ConnRef,
    value: bool,
    dirty: &mut DirtySet,
) -> Result<(), NetlistError> {
    let valid = conn.gate.index() < net.num_gate_slots()
        && !net.gate(conn.gate).is_dead()
        && conn.pin < net.gate(conn.gate).pins.len();
    if !valid {
        return Err(NetlistError::BadConn { conn });
    }
    let slots_before = net.num_gate_slots();
    let c = net.add_const(value);
    dirty.note_appended(slots_before, net.num_gate_slots());
    net.gate_mut(conn.gate).pins[conn.pin] = Pin::new(c);
    dirty.mark_changed(conn.gate);
    propagate_constants_tracked(net, dirty);
    Ok(())
}

/// Kills every logic gate that no longer reaches a primary output. Primary
/// inputs are never killed (the interface of the circuit is preserved).
/// Returns the number of gates removed.
pub fn sweep(net: &mut Network) -> usize {
    sweep_tracked(net, &mut DirtySet::new())
}

/// [`sweep`] with change tracking: killed gates are recorded in `dirty`'s
/// `removed` role.
pub fn sweep_tracked(net: &mut Network, dirty: &mut DirtySet) -> usize {
    let mut live = vec![false; net.num_gate_slots()];
    let mut stack: Vec<GateId> = net.outputs().iter().map(|o| o.src).collect();
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        for p in &net.gate(id).pins {
            stack.push(p.src);
        }
    }
    let ids: Vec<GateId> = net.gate_ids().collect();
    let mut removed = 0;
    for id in ids {
        if !live[id.index()] && net.gate(id).kind != GateKind::Input {
            net.kill(id);
            dirty.mark_removed(id);
            removed += 1;
        }
    }
    removed
}

/// The result of [`duplicate_path_prefix`].
#[derive(Clone, Debug)]
pub struct Duplication {
    /// The path in the new network corresponding to the input path
    /// (`P'` in Fig. 3); every gate on it now has fanout exactly one.
    pub new_path: Path,
    /// Pairs `(original, duplicate)` for each duplicated gate, in path
    /// order.
    pub mapping: Vec<(GateId, GateId)>,
    /// The structural changes this step made: the duplicates as `added`,
    /// the retargeted edge's sink gate as `changed` (or the output flag
    /// when edge `e` was a primary output).
    pub dirty: DirtySet,
}

/// The Theorem 7.1 duplication step of the KMS algorithm.
///
/// Duplicates the gates of `path` at positions `0..=upto` (where position
/// `upto` holds the gate `n` — the gate on the path closest to the output
/// with fanout greater than one) together with their fanin connections, then
/// retargets the single on-path fanout edge `e` of `n` (the connection at
/// position `upto + 1`, or the primary output if `n` is the last gate) to
/// the duplicate `n'`. The duplicate chain feeds only along the path, so
/// every gate along the returned path has fanout exactly one.
///
/// Logic function and all path lengths are unchanged (Theorem 7.1): each
/// duplicate has the same kind, delay and fanin connections as its original.
///
/// # Panics
///
/// Panics if `upto` is out of range or the path does not validate.
pub fn duplicate_path_prefix(net: &mut Network, path: &Path, upto: usize) -> Duplication {
    assert!(path.validate(net), "path does not validate");
    assert!(upto < path.len(), "duplication prefix out of range");
    let slots_before = net.num_gate_slots();
    let mut dirty = DirtySet::new();
    let mut mapping: Vec<(GateId, GateId)> = Vec::with_capacity(upto + 1);
    let mut prev_dup: Option<GateId> = None;
    for (i, &conn) in path.conns().iter().take(upto + 1).enumerate() {
        let orig = conn.gate;
        let g = net.gate(orig);
        let mut pins = g.pins.clone();
        let (kind, delay) = (g.kind, g.delay);
        if i > 0 {
            // The on-path pin of the duplicate must come from the previous
            // duplicate; the wire delay of the connection is preserved.
            pins[conn.pin].src = prev_dup.expect("previous duplicate exists");
        }
        let dup = net.add_gate_pins(kind, pins, delay);
        mapping.push((orig, dup));
        prev_dup = Some(dup);
    }
    let n_dup = prev_dup.expect("at least one gate duplicated");
    // Retarget edge e — the on-path fanout of n — to n'.
    if upto + 1 < path.len() {
        let e = path.conns()[upto + 1];
        net.gate_mut(e.gate).pins[e.pin].src = n_dup;
        dirty.mark_changed(e.gate);
    } else {
        net.set_output_src(path.output_index(), n_dup);
        dirty.mark_outputs();
    }
    dirty.note_appended(slots_before, net.num_gate_slots());
    let new_conns: Vec<ConnRef> = path
        .conns()
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            if i <= upto {
                ConnRef::new(mapping[i].1, c.pin)
            } else {
                c
            }
        })
        .collect();
    let new_path = Path::new(new_conns, path.output_index());
    debug_assert!(new_path.validate(net));
    Duplication {
        new_path,
        mapping,
        dirty,
    }
}

/// Rewires every consumer of `old` (pins and primary outputs) to `new`,
/// then kills `old`. Wire delays on rewired connections are preserved.
pub fn substitute_gate(net: &mut Network, old: GateId, new: GateId) {
    let fo = net.fanouts();
    for conn in &fo[old.index()] {
        net.gate_mut(conn.gate).pins[conn.pin].src = new;
    }
    for i in 0..net.outputs().len() {
        if net.outputs()[i].src == old {
            net.set_output_src(i, new);
        }
    }
    net.kill(old);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, GateKind, Network};

    fn fresh(name: &str) -> Network {
        Network::new(name)
    }

    #[test]
    fn decompose_xor3_preserves_function_and_delay() {
        let mut net = fresh("x");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.add_gate(GateKind::Xor, &[a, b, c], Delay::new(2));
        net.add_output("y", x);
        let orig = net.clone();
        decompose_to_simple(&mut net);
        assert!(net.is_simple());
        orig.exhaustive_equiv(&net).unwrap();
        // All paths through the expansion still cost exactly 2 units: the
        // reused gate holds the full delay and helpers are free.
        assert_eq!(net.gate(x).delay, Delay::new(2));
        let helpers: Vec<_> = net
            .gate_ids()
            .filter(|&g| g != x && net.gate(g).kind.is_simple())
            .collect();
        assert!(helpers.iter().all(|&g| net.gate(g).delay.is_zero()));
    }

    #[test]
    fn decompose_all_kinds() {
        for kind in [GateKind::Nand, GateKind::Nor, GateKind::Xor, GateKind::Xnor] {
            let mut net = fresh("k");
            let a = net.add_input("a");
            let b = net.add_input("b");
            let g = net.add_gate(kind, &[a, b], Delay::new(3));
            net.add_output("y", g);
            let orig = net.clone();
            decompose_to_simple(&mut net);
            assert!(net.is_simple(), "{kind}");
            orig.exhaustive_equiv(&net).unwrap();
        }
        let mut net = fresh("m");
        let s = net.add_input("s");
        let d0 = net.add_input("d0");
        let d1 = net.add_input("d1");
        let g = net.add_gate(GateKind::Mux, &[s, d0, d1], Delay::new(2));
        net.add_output("y", g);
        let orig = net.clone();
        decompose_to_simple(&mut net);
        assert!(net.is_simple());
        orig.exhaustive_equiv(&net).unwrap();
    }

    #[test]
    fn and_with_controlling_constant_collapses() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let c0 = net.add_const(false);
        let g = net.add_gate(GateKind::And, &[a, c0], Delay::UNIT);
        let h = net.add_gate(GateKind::Or, &[g, a], Delay::UNIT);
        net.add_output("y", h);
        propagate_constants(&mut net);
        // g became const 0; OR dropped it and became a zero-delay buffer.
        assert_eq!(net.gate(h).kind, GateKind::Buf);
        assert_eq!(net.gate(h).delay, Delay::ZERO);
        net.validate().unwrap();
    }

    #[test]
    fn single_input_gate_becomes_zero_delay_buffer() {
        // Paper, Section VII: the reduced gate is kept as a "wire" with
        // zero delay, not deleted.
        let mut net = fresh("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::And, &[a, b], Delay::new(5));
        net.add_output("y", g);
        set_conn_const(&mut net, ConnRef::new(g, 1), true);
        assert_eq!(net.gate(g).kind, GateKind::Buf);
        assert_eq!(net.gate(g).delay, Delay::ZERO);
        assert_eq!(net.eval_bool(&[true, false]), vec![true]);
        assert_eq!(net.eval_bool(&[false, true]), vec![false]);
    }

    #[test]
    fn nand_single_input_becomes_inverter_keeping_delay() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::Nand, &[a, b], Delay::new(4));
        net.add_output("y", g);
        set_conn_const(&mut net, ConnRef::new(g, 1), true);
        assert_eq!(net.gate(g).kind, GateKind::Not);
        assert_eq!(net.gate(g).delay, Delay::new(4));
    }

    #[test]
    fn try_set_conn_const_rejects_bad_conn() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        net.add_output("y", g);
        let before = net.clone();
        let bad = ConnRef::new(g, 7);
        assert_eq!(
            try_set_conn_const(&mut net, bad, true),
            Err(NetlistError::BadConn { conn: bad })
        );
        assert_eq!(net.dump(), before.dump());
        try_set_conn_const(&mut net, ConnRef::new(g, 1), true).unwrap();
        assert_eq!(net.gate(g).kind, GateKind::Buf);
    }

    #[test]
    fn controlling_constant_dominates_nand() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::Nand, &[a, a], Delay::UNIT);
        net.add_output("y", g);
        set_conn_const(&mut net, ConnRef::new(g, 0), false);
        assert_eq!(net.gate(g).kind, GateKind::Const(true));
    }

    #[test]
    fn xor_constant_folding() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::Xor, &[a, b], Delay::new(2));
        net.add_output("y", g);
        // XOR with constant 1 becomes an inverter (delay retained).
        set_conn_const(&mut net, ConnRef::new(g, 1), true);
        assert_eq!(net.gate(g).kind, GateKind::Not);
        assert_eq!(net.gate(g).delay, Delay::new(2));
        assert_eq!(net.eval_bool(&[false, false]), vec![true]);
    }

    #[test]
    fn mux_constant_select() {
        let mut net = fresh("t");
        let s = net.add_input("s");
        let d0 = net.add_input("d0");
        let d1 = net.add_input("d1");
        let g = net.add_gate(GateKind::Mux, &[s, d0, d1], Delay::new(2));
        net.add_output("y", g);
        set_conn_const(&mut net, ConnRef::new(g, 0), true);
        assert_eq!(net.gate(g).kind, GateKind::Buf);
        assert_eq!(net.eval_bool(&[false, false, true]), vec![true]);
    }

    #[test]
    fn mux_const_data_shapes() {
        let mut net = fresh("t");
        let s = net.add_input("s");
        let c0 = net.add_const(false);
        let c1 = net.add_const(true);
        let g = net.add_gate(GateKind::Mux, &[s, c0, c1], Delay::new(2));
        net.add_output("y", g);
        propagate_constants(&mut net);
        assert_eq!(net.gate(g).kind, GateKind::Buf);
        assert_eq!(net.eval_bool(&[true]), vec![true]);
        assert_eq!(net.eval_bool(&[false]), vec![false]);
    }

    #[test]
    fn sweep_removes_dangling_cone() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let dead1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let _dead2 = net.add_gate(GateKind::Not, &[dead1], Delay::UNIT);
        let live = net.add_gate(GateKind::Or, &[a, b], Delay::UNIT);
        net.add_output("y", live);
        assert_eq!(sweep(&mut net), 2);
        assert_eq!(net.simple_gate_count(), 1);
        net.validate().unwrap();
    }

    /// Carry-skip-flavoured duplication fixture:
    ///
    /// a ── g1(and,fanout 2) ──┬── g2(or) ── y0
    /// b ──┘                   └── g3(or) ── y1
    /// c ──────────────────────────┘
    #[test]
    fn duplicate_prefix_single_fanout_and_equivalence() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::new(1));
        let g2 = net.add_gate(GateKind::Or, &[g1, c], Delay::new(1));
        let g3 = net.add_gate(GateKind::Or, &[g1, c], Delay::new(1));
        net.add_output("y0", g2);
        net.add_output("y1", g3);
        let orig = net.clone();

        // Path a -> g1 -> g3 -> y1; g1 has fanout 2, so duplicate up to g1.
        let path = Path::new(vec![ConnRef::new(g1, 0), ConnRef::new(g3, 0)], 1);
        let dup = duplicate_path_prefix(&mut net, &path, 0);
        net.validate().unwrap();
        orig.exhaustive_equiv(&net).unwrap();

        // Every gate along the new path now has fanout exactly 1.
        let fo = net.fanouts();
        for g in dup.new_path.gates() {
            if g != dup.new_path.last_gate() {
                assert_eq!(fo[g.index()].len(), 1, "{g}");
            }
        }
        // Lengths match (Theorem 7.1).
        assert_eq!(dup.new_path.length(&net), path.length(&orig));
        // The original g1 keeps its other fanout.
        assert!(!fo[g1.index()].is_empty());
    }

    #[test]
    fn duplicate_prefix_retargets_primary_output() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::new(1));
        let g2 = net.add_gate(GateKind::Not, &[g1], Delay::new(1));
        net.add_output("y0", g1); // g1 drives a PO *and* g2: fanout 2.
        net.add_output("y1", g2);
        let orig = net.clone();
        // Path a -> g1 -> y0 where g1 is the last gate and has fanout > 1.
        let path = Path::new(vec![ConnRef::new(g1, 0)], 0);
        let dup = duplicate_path_prefix(&mut net, &path, 0);
        net.validate().unwrap();
        orig.exhaustive_equiv(&net).unwrap();
        assert_ne!(net.outputs()[0].src, g1);
        assert_eq!(net.outputs()[0].src, dup.mapping[0].1);
    }

    #[test]
    fn substitute_rewires_everything() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Not, &[g1], Delay::UNIT);
        net.add_output("y", g2);
        net.add_output("z", g1);
        let g1bis = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        substitute_gate(&mut net, g1, g1bis);
        net.validate().unwrap();
        assert!(net.gate(g1).is_dead());
        assert_eq!(net.outputs()[1].src, g1bis);
        assert_eq!(net.gate(g2).pins[0].src, g1bis);
    }

    #[test]
    fn propagate_reports_const_count() {
        let mut net = fresh("t");
        let a = net.add_input("a");
        let c1 = net.add_const(true);
        let g1 = net.add_gate(GateKind::And, &[a, c1], Delay::UNIT); // -> buf(a)
        let g2 = net.add_gate(GateKind::Or, &[g1, c1], Delay::UNIT); // -> const 1
        net.add_output("y", g2);
        let n = propagate_constants(&mut net);
        assert_eq!(n, 1);
        assert_eq!(net.gate(g2).kind, GateKind::Const(true));
    }
}

/// Structural hashing: merges live gates with identical kind, delay, and
/// pin lists (same sources, same wire delays). Returns the number of gates
/// merged away.
///
/// Under the Definition 4.1 timing model the merge is delay-safe: every
/// path through a merged gate maps to an equal-length path through the
/// survivor. Useful as an area-recovery pass after the KMS duplications —
/// the inverse of [`duplicate_path_prefix`] for duplicates that ended up
/// with identical fanins. AND/OR/XOR/XNOR pins are matched as multisets
/// (inputs commute); MUX pins are positional.
pub fn structural_hash(net: &mut Network) -> usize {
    use std::collections::HashMap;
    let mut merged_total = 0;
    loop {
        let mut table: HashMap<(GateKind, Delay, Vec<Pin>), GateId> = HashMap::new();
        let mut merged = 0;
        for id in net.topo_order() {
            let g = net.gate(id);
            if g.kind.is_source() {
                continue;
            }
            let mut pins = g.pins.clone();
            let commutative = matches!(
                g.kind,
                GateKind::And
                    | GateKind::Or
                    | GateKind::Nand
                    | GateKind::Nor
                    | GateKind::Xor
                    | GateKind::Xnor
            );
            if commutative {
                pins.sort_by_key(|p| (p.src, p.wire_delay));
            }
            let key = (g.kind, g.delay, pins);
            match table.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(id);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let survivor = *e.get();
                    substitute_gate(net, id, survivor);
                    merged += 1;
                }
            }
        }
        merged_total += merged;
        if merged == 0 {
            break; // fixpoint: merging can expose new identical pairs
        }
    }
    merged_total
}

/// Counts the IO-paths of the network per output (Definition 4.2), by
/// dynamic programming over the DAG. Saturates at `u64::MAX`.
pub fn count_io_paths(net: &Network) -> Vec<u64> {
    let order = net.topo_order();
    let mut paths = vec![0u64; net.num_gate_slots()];
    for id in order {
        let g = net.gate(id);
        paths[id.index()] = match g.kind {
            GateKind::Input => 1,
            GateKind::Const(_) => 0,
            _ => g
                .pins
                .iter()
                .fold(0u64, |acc, p| acc.saturating_add(paths[p.src.index()])),
        };
    }
    net.outputs().iter().map(|o| paths[o.src.index()]).collect()
}

#[cfg(test)]
mod strash_tests {
    use super::*;
    use crate::{Delay, GateKind, Network};

    #[test]
    fn merges_identical_gates() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::And, &[b, a], Delay::UNIT); // commuted
        let g3 = net.add_gate(GateKind::Or, &[g1, g2], Delay::UNIT);
        net.add_output("y", g3);
        let orig = net.clone();
        let merged = structural_hash(&mut net);
        assert_eq!(merged, 1);
        net.validate().unwrap();
        orig.exhaustive_equiv(&net).unwrap();
        // The OR collapsed to two identical pins from the survivor.
        assert_eq!(net.gate(g3).pins[0].src, net.gate(g3).pins[1].src);
    }

    #[test]
    fn cascaded_merges_reach_fixpoint() {
        // Two identical two-level cones: merging the lower level exposes
        // the upper level as identical.
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let l1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let l2 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let u1 = net.add_gate(GateKind::Or, &[l1, c], Delay::UNIT);
        let u2 = net.add_gate(GateKind::Or, &[l2, c], Delay::UNIT);
        net.add_output("y0", u1);
        net.add_output("y1", u2);
        let orig = net.clone();
        let merged = structural_hash(&mut net);
        assert_eq!(merged, 2);
        orig.exhaustive_equiv(&net).unwrap();
        assert_eq!(net.outputs()[0].src, net.outputs()[1].src);
    }

    #[test]
    fn different_delays_not_merged() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::And, &[a, b], Delay::new(2));
        net.add_output("y0", g1);
        net.add_output("y1", g2);
        assert_eq!(structural_hash(&mut net), 0);
    }

    #[test]
    fn mux_pins_positional() {
        let mut net = Network::new("t");
        let s = net.add_input("s");
        let d0 = net.add_input("d0");
        let d1 = net.add_input("d1");
        let m1 = net.add_gate(GateKind::Mux, &[s, d0, d1], Delay::UNIT);
        let m2 = net.add_gate(GateKind::Mux, &[s, d1, d0], Delay::UNIT); // swapped data
        net.add_output("y0", m1);
        net.add_output("y1", m2);
        assert_eq!(structural_hash(&mut net), 0, "mux data pins don't commute");
    }

    #[test]
    fn path_counting() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g1 = net.add_gate(GateKind::Not, &[a], Delay::UNIT);
        let g2 = net.add_gate(GateKind::And, &[g1, g1, a], Delay::UNIT);
        net.add_output("y", g2);
        // Paths to y: a→g1→g2 (×2 parallel pins) + a→g2 = 3.
        assert_eq!(count_io_paths(&net), vec![3]);
        // Constants contribute no paths.
        let mut net2 = Network::new("c");
        net2.add_input("a");
        let c = net2.add_const(true);
        let g = net2.add_gate(GateKind::Buf, &[c], Delay::UNIT);
        net2.add_output("y", g);
        assert_eq!(count_io_paths(&net2), vec![0]);
    }
}
