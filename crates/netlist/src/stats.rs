//! Network statistics: the summary numbers the experiment harness and CLI
//! report (gate histograms, fanout distribution, depth, path counts).

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::GateKind;
use crate::network::Network;
use crate::transform::count_io_paths;

/// A structural summary of a network.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetworkStats {
    /// Live logic gates per kind (mnemonic → count).
    pub gates_by_kind: BTreeMap<&'static str, usize>,
    /// The paper's simple-gate count (zero-delay buffers excluded).
    pub simple_gates: usize,
    /// Primary input / output counts.
    pub inputs: usize,
    /// See [`NetworkStats::inputs`].
    pub outputs: usize,
    /// Maximum gate depth (Definition 4.12).
    pub depth: usize,
    /// Largest fanout of any gate (connections + primary outputs).
    pub max_fanout: usize,
    /// Mean fanout over live logic gates and inputs (×1000, integer).
    pub mean_fanout_milli: usize,
    /// Total IO-path count over all outputs (saturating).
    pub io_paths: u64,
}

impl NetworkStats {
    /// Computes the summary for `net`.
    pub fn of(net: &Network) -> NetworkStats {
        let mut gates_by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        let fo = net.fanouts();
        let mut max_fanout = 0usize;
        let mut fanout_sum = 0usize;
        let mut fanout_n = 0usize;
        for id in net.gate_ids() {
            let g = net.gate(id);
            if g.kind.is_logic() {
                *gates_by_kind.entry(g.kind.mnemonic()).or_insert(0) += 1;
            }
            if matches!(g.kind, GateKind::Const(_)) {
                continue;
            }
            let f = fo[id.index()].len() + net.outputs().iter().filter(|o| o.src == id).count();
            max_fanout = max_fanout.max(f);
            fanout_sum += f;
            fanout_n += 1;
        }
        let io_paths = count_io_paths(net)
            .into_iter()
            .fold(0u64, u64::saturating_add);
        NetworkStats {
            gates_by_kind,
            simple_gates: net.simple_gate_count(),
            inputs: net.inputs().len(),
            outputs: net.outputs().len(),
            depth: net.depth(),
            max_fanout,
            mean_fanout_milli: (fanout_sum * 1000).checked_div(fanout_n).unwrap_or(0),
            io_paths,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} inputs, {} outputs, {} simple gates, depth {}, \
             max fanout {}, mean fanout {}.{:03}, {} io-paths",
            self.inputs,
            self.outputs,
            self.simple_gates,
            self.depth,
            self.max_fanout,
            self.mean_fanout_milli / 1000,
            self.mean_fanout_milli % 1000,
            self.io_paths
        )?;
        for (kind, n) in &self.gates_by_kind {
            writeln!(f, "  {kind:>6}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, Network};

    #[test]
    fn stats_of_small_net() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::UNIT);
        let g2 = net.add_gate(GateKind::Not, &[g1], Delay::UNIT);
        net.add_output("y", g2);
        net.add_output("z", g1);
        let s = NetworkStats::of(&net);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.simple_gates, 2);
        assert_eq!(s.depth, 2);
        assert_eq!(s.gates_by_kind["and"], 1);
        assert_eq!(s.gates_by_kind["not"], 1);
        // g1 drives g2 and the PO z: fanout 2.
        assert_eq!(s.max_fanout, 2);
        // Paths: a→g1→g2, b→g1→g2, a→g1(z), b→g1(z) = 4.
        assert_eq!(s.io_paths, 4);
        let text = s.to_string();
        assert!(text.contains("2 simple gates"));
        assert!(text.contains("and: 1"));
    }

    #[test]
    fn empty_network() {
        let net = Network::new("e");
        let s = NetworkStats::of(&net);
        assert_eq!(s.simple_gates, 0);
        assert_eq!(s.io_paths, 0);
        assert_eq!(s.mean_fanout_milli, 0);
    }
}
