use std::error::Error;
use std::fmt;

use crate::gate::{ConnRef, GateId, GateKind};

/// Structural errors detected by [`crate::Network::validate`] and the
/// transforms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetlistError {
    /// The gate graph contains a cycle; combinational networks must be
    /// acyclic (Definition 4.1).
    Cyclic,
    /// A gate has a pin count that is invalid for its kind.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// Its kind.
        kind: GateKind,
        /// The observed pin count.
        pins: usize,
    },
    /// A gate references a dead or out-of-range gate.
    DanglingPin {
        /// The gate with the dangling pin.
        gate: GateId,
    },
    /// A primary output references a dead or out-of-range gate.
    DanglingOutput {
        /// The output's name.
        name: String,
    },
    /// An operation that requires a simple-gate network (the KMS algorithm,
    /// Section VI) was applied to a network with complex gates.
    NotSimple {
        /// A complex gate found in the network.
        gate: GateId,
        /// Its kind.
        kind: GateKind,
    },
    /// A primary input was declared with a name that is already taken.
    DuplicateInput {
        /// The clashing name.
        name: String,
    },
    /// A gate under construction references a dead or out-of-range source.
    BadSource {
        /// The invalid source id.
        src: GateId,
    },
    /// A connection reference does not name a live pin.
    BadConn {
        /// The invalid connection.
        conn: ConnRef,
    },
    /// A text serialization could not be parsed back into a network (the
    /// exact-serialization format of checkpoints; see
    /// [`crate::Network::deserialize_exact`]).
    ParseFailed {
        /// What was malformed, for diagnostics.
        context: String,
    },
    /// An execution-layer failure: a worker pool died or an isolated
    /// panic was converted into a typed error instead of unwinding
    /// through the caller. The analysis did not complete; no partial
    /// result is returned.
    ExecutionFailed {
        /// What failed, for diagnostics.
        context: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Cyclic => write!(f, "network contains a combinational cycle"),
            NetlistError::BadArity { gate, kind, pins } => {
                write!(f, "gate {gate} of kind {kind} has invalid pin count {pins}")
            }
            NetlistError::DanglingPin { gate } => {
                write!(f, "gate {gate} references a dead or missing gate")
            }
            NetlistError::DanglingOutput { name } => {
                write!(f, "output {name:?} references a dead or missing gate")
            }
            NetlistError::NotSimple { gate, kind } => write!(
                f,
                "network is not composed of simple gates: gate {gate} is {kind}"
            ),
            NetlistError::DuplicateInput { name } => {
                write!(f, "duplicate input name {name:?}")
            }
            NetlistError::BadSource { src } => {
                write!(f, "pin source {src} is dead or out of range")
            }
            NetlistError::BadConn { conn } => {
                write!(f, "connection {conn} does not reference a live pin")
            }
            NetlistError::ParseFailed { context } => {
                write!(f, "malformed network serialization: {context}")
            }
            NetlistError::ExecutionFailed { context } => {
                write!(f, "execution failed: {context}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NetlistError::Cyclic.to_string().contains("cycle"));
        let e = NetlistError::BadArity {
            gate: GateId::from_index(2),
            kind: GateKind::Mux,
            pins: 2,
        };
        assert!(e.to_string().contains("g2"));
        assert!(e.to_string().contains("mux"));
        let e = NetlistError::DanglingOutput {
            name: "y".to_string(),
        };
        assert!(e.to_string().contains("\"y\""));
        let e = NetlistError::DuplicateInput {
            name: "a".to_string(),
        };
        assert!(e.to_string().contains("duplicate input name"));
        let e = NetlistError::BadSource {
            src: GateId::from_index(5),
        };
        assert!(e.to_string().contains("g5"));
        let e = NetlistError::BadConn {
            conn: ConnRef::new(GateId::from_index(5), 2),
        };
        assert!(e.to_string().contains("g5.2"));
    }
}
