//! Gate-level combinational network substrate for the KMS reproduction.
//!
//! This crate implements the circuit model of Keutzer, Malik and Saldanha,
//! *"Is Redundancy Necessary to Reduce Delay?"* (DAC 1990 / TCAD 1991),
//! Section IV: a combinational circuit is a directed acyclic graph of gates
//! and connections, where each gate and each connection carries a delay
//! (Definition 4.1).
//!
//! The main type is [`Network`]; paths (Definition 4.2) are represented by
//! [`Path`]. The transforms required by the KMS algorithm live in
//! [`transform`]:
//!
//! * decomposition of complex gates into simple gates, assigning the complex
//!   gate's delay to the last simple gate (paper, Section VI);
//! * constant propagation with the paper's rule that a multi-input gate that
//!   becomes single-input is kept as a zero-delay buffer rather than deleted
//!   (Section VII preamble);
//! * the gate-duplication transform of Theorem 7.1.
//!
//! # Example
//!
//! ```
//! use kms_netlist::{Network, GateKind, Delay};
//!
//! // Build c = a AND (NOT b).
//! let mut net = Network::new("demo");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let nb = net.add_gate(GateKind::Not, &[b], Delay::new(1));
//! let c = net.add_gate(GateKind::And, &[a, nb], Delay::new(1));
//! net.add_output("c", c);
//!
//! assert_eq!(net.simple_gate_count(), 2);
//! let out = net.eval_bool(&[true, false]);
//! assert_eq!(out, vec![true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod dirty;
mod error;
mod gate;
mod network;
mod path;
mod serialize;
mod sim;
mod stats;
mod topo;

pub mod cone;
pub mod hash;
pub mod transform;

pub use delay::{Delay, DelayModel};
pub use dirty::DirtySet;
pub use error::NetlistError;
pub use gate::{ConnRef, GateId, GateKind, Pin};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use network::{Gate, Network, Output};
pub use path::Path;
pub use serialize::{escape_token, unescape_token};
pub use sim::{eval_gate_words, Cube, ParseCubeError, Value};
pub use stats::NetworkStats;
pub use topo::Topology;
