//! Cached levelized topology: CSR fanouts, topological order, and levels.
//!
//! [`Network::fanouts`] and [`Network::topo_order`] allocate a fresh
//! `Vec<Vec<ConnRef>>` (and run a full Kahn pass) on every call. That is fine
//! for one-shot queries, but the ATPG and fault-simulation hot paths ask for
//! the same tables thousands of times per circuit while the network is not
//! changing at all. [`Topology`] computes the tables once and hands out
//! borrowed slices:
//!
//! * **CSR fanouts** — one flat `Vec<ConnRef>` plus an offset array instead
//!   of a `Vec` per gate, so a fanout walk is a bounds-checked slice, not a
//!   pointer chase through per-gate allocations;
//! * **topological order** — bit-for-bit the same order
//!   [`Network::try_topo_order`] produces, so swapping a call site over to
//!   the cache never changes behaviour;
//! * **topo positions** — `pos(g)` gives `g`'s index in the order without a
//!   `HashMap` (the sentinel `u32::MAX` marks dead slots);
//! * **levels** — `level(g)` is 0 for sources and `1 + max(level(fanin))`
//!   otherwise, the unit-delay levelization used for event scheduling.
//!
//! # Invalidation
//!
//! The cache is as stale as the caller lets it get. The contract mirrors the
//! rest of the workspace's incremental layers: accumulate structural edits in
//! a [`DirtySet`] and call [`Topology::refresh`], which rebuilds only when
//! the set is non-empty. A `Topology` built from a network is valid for
//! exactly that network until a gate is added, removed, or rewired.

use crate::dirty::DirtySet;
use crate::error::NetlistError;
use crate::gate::{ConnRef, GateId};
use crate::network::Network;

/// Sentinel topo position for dead (or never-ordered) gate slots.
const UNPLACED: u32 = u32::MAX;

/// Cached CSR fanout table, topological order, and levelization for a
/// [`Network`]. See the module docs for the invalidation contract.
#[derive(Clone, Debug)]
pub struct Topology {
    slots: usize,
    fo_off: Vec<u32>,
    fo: Vec<ConnRef>,
    order: Vec<GateId>,
    pos: Vec<u32>,
    level: Vec<u32>,
    max_level: u32,
}

impl Topology {
    /// Builds the cached topology for `net`.
    ///
    /// # Panics
    ///
    /// Panics if the network contains a cycle; use [`Topology::try_build`]
    /// for a fallible version.
    pub fn build(net: &Network) -> Topology {
        Topology::try_build(net).expect("network contains a cycle")
    }

    /// Fallible [`Topology::build`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the live gates contain a cycle.
    pub fn try_build(net: &Network) -> Result<Topology, NetlistError> {
        let n = net.num_gate_slots();

        // CSR fanouts: count, prefix-sum, fill. Filling in the same
        // (gate, pin) iteration order as `Network::fanouts` keeps each
        // source's fanout list in the same relative order.
        let mut fo_off = vec![0u32; n + 1];
        let mut live = 0usize;
        for id in net.gate_ids() {
            live += 1;
            for pin in &net.gate(id).pins {
                fo_off[pin.src.index() + 1] += 1;
            }
        }
        for i in 0..n {
            fo_off[i + 1] += fo_off[i];
        }
        let mut cursor = fo_off.clone();
        let mut fo = vec![ConnRef::new(GateId::from_index(0), 0); fo_off[n] as usize];
        for id in net.gate_ids() {
            for (p, pin) in net.gate(id).pins.iter().enumerate() {
                let c = &mut cursor[pin.src.index()];
                fo[*c as usize] = ConnRef::new(id, p);
                *c += 1;
            }
        }

        // Kahn's algorithm with a LIFO stack — the exact traversal
        // `Network::try_topo_order` uses, so the orders are identical.
        let mut indeg = vec![0usize; n];
        let mut order = Vec::with_capacity(live);
        let mut stack = Vec::new();
        for id in net.gate_ids() {
            let pins = net.gate(id).pins.len();
            indeg[id.index()] = pins;
            if pins == 0 {
                stack.push(id);
            }
        }
        let mut pos = vec![UNPLACED; n];
        let mut level = vec![0u32; n];
        let mut max_level = 0u32;
        while let Some(id) = stack.pop() {
            pos[id.index()] = order.len() as u32;
            order.push(id);
            let mut lvl = 0u32;
            for pin in &net.gate(id).pins {
                lvl = lvl.max(level[pin.src.index()] + 1);
            }
            level[id.index()] = lvl;
            max_level = max_level.max(lvl);
            let (lo, hi) = (fo_off[id.index()] as usize, fo_off[id.index() + 1] as usize);
            for conn in &fo[lo..hi] {
                let j = conn.gate.index();
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    stack.push(conn.gate);
                }
            }
        }
        if order.len() != live {
            return Err(NetlistError::Cyclic);
        }
        Ok(Topology {
            slots: n,
            fo_off,
            fo,
            order,
            pos,
            level,
            max_level,
        })
    }

    /// Number of gate slots (including tombstones) in the network this
    /// topology was built from.
    pub fn num_slots(&self) -> usize {
        self.slots
    }

    /// The fanout connections of `g`, in the same relative order as
    /// [`Network::fanouts`].
    #[inline]
    pub fn fanouts(&self, g: GateId) -> &[ConnRef] {
        let lo = self.fo_off[g.index()] as usize;
        let hi = self.fo_off[g.index() + 1] as usize;
        &self.fo[lo..hi]
    }

    /// The cached topological order (sources first), identical to
    /// [`Network::topo_order`].
    #[inline]
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// `g`'s index within [`Topology::order`].
    ///
    /// # Panics
    ///
    /// Panics if `g` was dead when the topology was built.
    #[inline]
    pub fn pos(&self, g: GateId) -> usize {
        let p = self.pos[g.index()];
        debug_assert_ne!(p, UNPLACED, "topo position queried for a dead gate");
        p as usize
    }

    /// Unit-delay level of `g`: 0 for sources, `1 + max(level of fanins)`
    /// otherwise. Dead slots report level 0.
    #[inline]
    pub fn level(&self, g: GateId) -> usize {
        self.level[g.index()] as usize
    }

    /// The largest level in the network (0 for an empty network).
    pub fn max_level(&self) -> usize {
        self.max_level as usize
    }

    /// Re-validates the cache against `net` after the edits recorded in
    /// `dirty`: a no-op when `dirty` is empty, a full rebuild otherwise.
    /// Callers clear `dirty` themselves once every dependent cache has seen
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if a rebuild is needed and the network now contains a cycle.
    pub fn refresh(&mut self, net: &Network, dirty: &DirtySet) {
        if dirty.is_empty() && self.slots == net.num_gate_slots() {
            return;
        }
        *self = Topology::build(net);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::Delay;

    fn sample() -> Network {
        let mut net = Network::new("topo");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let na = net.add_gate(GateKind::Not, &[a], Delay::new(1));
        let g = net.add_gate(GateKind::And, &[na, b], Delay::new(1));
        let h = net.add_gate(GateKind::Or, &[g, a], Delay::new(1));
        net.add_output("h", h);
        net.add_output("g", g);
        net
    }

    #[test]
    fn order_matches_network_topo_order() {
        let net = sample();
        let topo = Topology::build(&net);
        assert_eq!(topo.order(), net.topo_order().as_slice());
        for (i, &g) in topo.order().iter().enumerate() {
            assert_eq!(topo.pos(g), i);
        }
    }

    #[test]
    fn fanouts_match_network_fanouts() {
        let net = sample();
        let topo = Topology::build(&net);
        let fo = net.fanouts();
        for (i, expect) in fo.iter().enumerate() {
            assert_eq!(topo.fanouts(GateId::from_index(i)), expect.as_slice());
        }
    }

    #[test]
    fn levels_are_one_plus_max_fanin() {
        let net = sample();
        let topo = Topology::build(&net);
        for &g in topo.order() {
            let want = net
                .gate(g)
                .pins
                .iter()
                .map(|p| topo.level(p.src) + 1)
                .max()
                .unwrap_or(0);
            assert_eq!(topo.level(g), want);
        }
        assert_eq!(
            topo.max_level(),
            topo.order().iter().map(|&g| topo.level(g)).max().unwrap()
        );
    }

    #[test]
    fn refresh_rebuilds_only_when_dirty() {
        let mut net = sample();
        let mut topo = Topology::build(&net);
        let clean = DirtySet::default();
        topo.refresh(&net, &clean);
        assert_eq!(topo.order(), net.topo_order().as_slice());

        let mut dirty = DirtySet::default();
        let a = net.inputs()[0];
        let extra = net.add_gate(GateKind::Not, &[a], Delay::new(1));
        dirty.mark_added(extra);
        topo.refresh(&net, &dirty);
        assert_eq!(topo.order(), net.topo_order().as_slice());
        assert_eq!(topo.num_slots(), net.num_gate_slots());
    }
}
