//! Deterministic hashing for hot-path hash maps.
//!
//! `std::collections::HashMap` defaults to SipHash with a per-process random
//! seed. That is the right default against untrusted input, but every key in
//! this workspace is derived from the netlist itself, and the randomness has
//! two costs we care about: SipHash is slow for the short integer-tuple keys
//! the analysis layers hash millions of times, and the iteration order varies
//! between runs, which makes "iterate over a map" an easy way to silently
//! break bit-identical reports.
//!
//! [`FxHasher`] is the FNV-flavoured multiply-xor hash used by rustc
//! (firefox's "Fx" hash): `state = (rotl5(state) ^ chunk) * K`. It is not
//! collision-resistant against adversarial keys — do not use it for data
//! that crosses a trust boundary — but it is deterministic across runs and
//! platforms and several times faster than SipHash on small keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (a.k.a. the rustc hasher); chosen so that the
/// multiply mixes low bits into high bits reasonably well.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Deterministic multiply-xor hasher. See the module docs for the contract.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; stateless, so maps hash identically
/// across runs.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with deterministic, fast hashing for netlist-derived keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with deterministic, fast hashing for netlist-derived keys.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        a.write(b"topology");
        b.write_u64(0xdead_beef);
        b.write(b"topology");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tail_bytes_affect_hash() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"123456789");
        b.write(b"12345678A");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_usable() {
        let mut m: FxHashMap<(u32, bool), u32> = FxHashMap::default();
        m.insert((7, true), 42);
        assert_eq!(m.get(&(7, true)), Some(&42));
    }
}
