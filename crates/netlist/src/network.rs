use std::collections::HashMap;
use std::fmt;

use crate::delay::Delay;
use crate::error::NetlistError;
use crate::gate::{ConnRef, GateId, GateKind, Pin};

/// A gate (node) of a [`Network`]: its logic function, input connections,
/// intrinsic delay, and optional name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Gate {
    /// The logic function of the gate.
    pub kind: GateKind,
    /// Input connections, ordered; see [`GateKind`] for per-kind pin roles.
    pub pins: Vec<Pin>,
    /// Intrinsic delay `d(g)` of the gate (Definition 4.1).
    pub delay: Delay,
    /// Optional name (always present on primary inputs).
    pub name: Option<String>,
    pub(crate) dead: bool,
}

impl Gate {
    /// `true` if this gate has been deleted by a transform; dead gates are
    /// tombstones until [`Network::compact`] runs.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The number of input pins.
    pub fn fanin(&self) -> usize {
        self.pins.len()
    }
}

/// A primary output: a named reference to the gate that drives it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Output {
    /// The output's name.
    pub name: String,
    /// The driving gate.
    pub src: GateId,
}

/// A combinational circuit: a DAG of gates and connections, each carrying a
/// delay (Definition 4.1 of the paper).
///
/// Networks are built with [`Network::add_input`], [`Network::add_gate`] and
/// [`Network::add_output`], and transformed by the functions in
/// [`crate::transform`]. Gate ids are stable under transforms; deleted gates
/// leave tombstones that [`Network::compact`] removes.
///
/// ```
/// use kms_netlist::{Network, GateKind, Delay};
/// let mut net = Network::new("xor2");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let x = net.add_gate(GateKind::Xor, &[a, b], Delay::new(2));
/// net.add_output("x", x);
/// assert_eq!(net.eval_bool(&[true, true]), vec![false]);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    pub(crate) name: String,
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<GateId>,
    pub(crate) outputs: Vec<Output>,
    pub(crate) const_cache: [Option<GateId>; 2],
}

impl Network {
    /// Creates an empty network with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const_cache: [None, None],
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the network.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn push_gate(&mut self, gate: Gate) -> GateId {
        let id = GateId::from_index(self.gates.len());
        self.gates.push(gate);
        id
    }

    /// Adds a primary input named `name`.
    ///
    /// # Panics
    ///
    /// Panics if an input with the same name already exists; use
    /// [`Network::try_add_input`] for a fallible version.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        match self.try_add_input(name) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds a primary input named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateInput`] if an input with the same
    /// name already exists.
    pub fn try_add_input(&mut self, name: impl Into<String>) -> Result<GateId, NetlistError> {
        let name = name.into();
        if self.input_by_name(&name).is_some() {
            return Err(NetlistError::DuplicateInput { name });
        }
        let id = self.push_gate(Gate {
            kind: GateKind::Input,
            pins: Vec::new(),
            delay: Delay::ZERO,
            name: Some(name),
            dead: false,
        });
        self.inputs.push(id);
        Ok(id)
    }

    /// Returns the shared constant gate for `value`, creating it on first
    /// use.
    pub fn add_const(&mut self, value: bool) -> GateId {
        let slot = usize::from(value);
        if let Some(id) = self.const_cache[slot] {
            if !self.gates[id.index()].dead {
                return id;
            }
        }
        let id = self.push_gate(Gate {
            kind: GateKind::Const(value),
            pins: Vec::new(),
            delay: Delay::ZERO,
            name: None,
            dead: false,
        });
        self.const_cache[slot] = Some(id);
        id
    }

    /// Adds a gate of `kind` with zero-wire-delay connections from `srcs`
    /// and intrinsic delay `delay`.
    ///
    /// # Panics
    ///
    /// Panics if the pin count is invalid for `kind` (see
    /// [`Network::add_gate_pins`]).
    pub fn add_gate(&mut self, kind: GateKind, srcs: &[GateId], delay: Delay) -> GateId {
        self.add_gate_pins(kind, srcs.iter().map(|&s| Pin::new(s)).collect(), delay)
    }

    /// Fallible [`Network::add_gate`].
    ///
    /// # Errors
    ///
    /// See [`Network::try_add_gate_pins`].
    pub fn try_add_gate(
        &mut self,
        kind: GateKind,
        srcs: &[GateId],
        delay: Delay,
    ) -> Result<GateId, NetlistError> {
        self.try_add_gate_pins(kind, srcs.iter().map(|&s| Pin::new(s)).collect(), delay)
    }

    /// Adds a gate with explicit [`Pin`]s (allowing per-connection wire
    /// delays).
    ///
    /// # Panics
    ///
    /// Panics if the pin count is invalid for `kind`: NOT/BUF take exactly
    /// one pin, MUX exactly three, the n-ary gates at least one, and
    /// sources none; or if any source id is out of range or dead. Use
    /// [`Network::try_add_gate_pins`] for a fallible version.
    pub fn add_gate_pins(&mut self, kind: GateKind, pins: Vec<Pin>, delay: Delay) -> GateId {
        match self.try_add_gate_pins(kind, pins, delay) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Network::add_gate_pins`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the pin count is invalid for
    /// `kind`, or [`NetlistError::BadSource`] if any source id is out of
    /// range or dead. The error carries the id the gate *would* have
    /// received ([`NetlistError::BadArity::gate`]); nothing is added on
    /// failure.
    pub fn try_add_gate_pins(
        &mut self,
        kind: GateKind,
        pins: Vec<Pin>,
        delay: Delay,
    ) -> Result<GateId, NetlistError> {
        if !arity_ok(kind, pins.len()) {
            return Err(NetlistError::BadArity {
                gate: GateId::from_index(self.gates.len()),
                kind,
                pins: pins.len(),
            });
        }
        for p in &pins {
            if p.src.index() >= self.gates.len() || self.gates[p.src.index()].dead {
                return Err(NetlistError::BadSource { src: p.src });
            }
        }
        Ok(self.push_gate(Gate {
            kind,
            pins,
            delay,
            name: None,
            dead: false,
        }))
    }

    /// Declares `src` as a primary output named `name`.
    pub fn add_output(&mut self, name: impl Into<String>, src: GateId) {
        self.outputs.push(Output {
            name: name.into(),
            src,
        });
    }

    /// The gate with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Mutable access to the gate with id `id`.
    pub fn gate_mut(&mut self, id: GateId) -> &mut Gate {
        &mut self.gates[id.index()]
    }

    /// The pin behind a [`ConnRef`].
    pub fn pin(&self, conn: ConnRef) -> Pin {
        self.gates[conn.gate.index()].pins[conn.pin]
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Replaces the driver of output `idx`.
    pub fn set_output_src(&mut self, idx: usize, src: GateId) {
        self.outputs[idx].src = src;
    }

    /// Looks up a primary input by name.
    pub fn input_by_name(&self, name: &str) -> Option<GateId> {
        self.inputs
            .iter()
            .copied()
            .find(|&id| self.gates[id.index()].name.as_deref() == Some(name))
    }

    /// Looks up a primary output index by name.
    pub fn output_by_name(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|o| o.name == name)
    }

    /// The index of `input` within [`Network::inputs`], if it is one.
    pub fn input_position(&self, input: GateId) -> Option<usize> {
        self.inputs.iter().position(|&i| i == input)
    }

    /// Total number of gate slots (including tombstones).
    pub fn num_gate_slots(&self) -> usize {
        self.gates.len()
    }

    /// Iterates over the ids of all live gates.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.dead)
            .map(|(i, _)| GateId::from_index(i))
    }

    /// Number of live logic gates, the paper's circuit-size metric
    /// ("circuit size is measured by counting the number of simple gates",
    /// Section VIII). Sources are excluded, as are the zero-delay buffers
    /// that stand in for wires after constant propagation.
    pub fn simple_gate_count(&self) -> usize {
        self.gate_ids()
            .filter(|&id| {
                let g = self.gate(id);
                g.kind.is_logic() && !(g.kind == GateKind::Buf && g.delay.is_zero())
            })
            .count()
    }

    /// Number of live logic gates of any kind (buffers included).
    pub fn logic_gate_count(&self) -> usize {
        self.gate_ids()
            .filter(|&id| self.gate(id).kind.is_logic())
            .count()
    }

    /// `true` if every live logic gate is a simple gate (AND/OR/NOT/BUF).
    /// The KMS algorithm requires this (Section VI: "the circuit on which
    /// the algorithm is performed must be composed of only simple gates").
    pub fn is_simple(&self) -> bool {
        self.gate_ids()
            .all(|id| self.gate(id).kind.is_source() || self.gate(id).kind.is_simple())
    }

    /// Applies `model` to set every live logic gate's intrinsic delay.
    pub fn apply_delay_model(&mut self, model: crate::DelayModel) {
        for i in 0..self.gates.len() {
            if !self.gates[i].dead {
                self.gates[i].delay = model.gate_delay(self.gates[i].kind);
            }
        }
    }

    /// Computes, for every live gate, the list of connections it drives.
    ///
    /// The result is indexed by gate arena index; entries for dead gates are
    /// empty. Output pins of the network itself are not included (the paper
    /// treats primary-output connections as delay-free path terminators).
    pub fn fanouts(&self) -> Vec<Vec<ConnRef>> {
        let mut fo = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            if g.dead {
                continue;
            }
            let sink = GateId::from_index(i);
            for (p, pin) in g.pins.iter().enumerate() {
                fo[pin.src.index()].push(ConnRef::new(sink, p));
            }
        }
        fo
    }

    /// A topological order of the live gates (sources first).
    ///
    /// # Panics
    ///
    /// Panics if the network contains a cycle; use
    /// [`Network::try_topo_order`] for a fallible version.
    pub fn topo_order(&self) -> Vec<GateId> {
        self.try_topo_order().expect("network contains a cycle")
    }

    /// Fallible [`Network::topo_order`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the live gates contain a cycle.
    pub fn try_topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        let n = self.gates.len();
        let mut indeg = vec![0usize; n];
        let mut order = Vec::with_capacity(n);
        let mut stack = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            if g.dead {
                continue;
            }
            indeg[i] = g.pins.len();
            if g.pins.is_empty() {
                stack.push(GateId::from_index(i));
            }
        }
        let fo = self.fanouts();
        while let Some(id) = stack.pop() {
            order.push(id);
            for conn in &fo[id.index()] {
                let j = conn.gate.index();
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    stack.push(conn.gate);
                }
            }
        }
        let live = self.gates.iter().filter(|g| !g.dead).count();
        if order.len() != live {
            return Err(NetlistError::Cyclic);
        }
        Ok(order)
    }

    /// The depth of the network: the maximum number of logic gates along
    /// any input-to-output path (Definition 4.12).
    ///
    /// # Panics
    ///
    /// Panics if the network contains a cycle; use [`Network::try_depth`]
    /// for a fallible version.
    pub fn depth(&self) -> usize {
        self.try_depth().expect("network contains a cycle")
    }

    /// Fallible [`Network::depth`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] if the live gates contain a cycle.
    pub fn try_depth(&self) -> Result<usize, NetlistError> {
        let order = self.try_topo_order()?;
        let mut d = vec![0usize; self.gates.len()];
        for id in order {
            let g = self.gate(id);
            if g.kind.is_source() {
                continue;
            }
            d[id.index()] = 1 + g.pins.iter().map(|p| d[p.src.index()]).max().unwrap_or(0);
        }
        Ok(self
            .outputs
            .iter()
            .map(|o| d[o.src.index()])
            .max()
            .unwrap_or(0))
    }

    /// Checks the structural invariants: pin arities, liveness of all
    /// referenced gates, and acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, g) in self.gates.iter().enumerate() {
            if g.dead {
                continue;
            }
            let id = GateId::from_index(i);
            if !arity_ok(g.kind, g.pins.len()) {
                return Err(NetlistError::BadArity {
                    gate: id,
                    kind: g.kind,
                    pins: g.pins.len(),
                });
            }
            for p in &g.pins {
                if p.src.index() >= self.gates.len() || self.gates[p.src.index()].dead {
                    return Err(NetlistError::DanglingPin { gate: id });
                }
            }
        }
        for o in &self.outputs {
            if o.src.index() >= self.gates.len() || self.gates[o.src.index()].dead {
                return Err(NetlistError::DanglingOutput {
                    name: o.name.clone(),
                });
            }
        }
        self.try_topo_order().map(|_| ())
    }

    /// Marks `id` dead. Callers must ensure nothing references it (or fix
    /// references afterwards); [`Network::validate`] will catch mistakes.
    pub(crate) fn kill(&mut self, id: GateId) {
        self.gates[id.index()].dead = true;
        self.gates[id.index()].pins.clear();
    }

    /// Garbage-collects tombstones, renumbering gates densely. Returns the
    /// mapping from old to new ids (dead gates map to `None`).
    ///
    /// # Panics
    ///
    /// Panics if a live gate, input or output still references a killed
    /// gate; use [`Network::try_compact`] for a fallible version.
    pub fn compact(&mut self) -> Vec<Option<GateId>> {
        match self.try_compact() {
            Ok(map) => map,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Network::compact`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DanglingPin`] / [`NetlistError::DanglingOutput`]
    /// if a live gate or output still references a killed gate, and
    /// [`NetlistError::BadSource`] if a primary input was itself killed.
    /// The network is unchanged on failure.
    pub fn try_compact(&mut self) -> Result<Vec<Option<GateId>>, NetlistError> {
        let mut map = vec![None; self.gates.len()];
        let mut new_gates = Vec::with_capacity(self.gates.len());
        for (i, g) in self.gates.iter().enumerate() {
            if !g.dead {
                map[i] = Some(GateId::from_index(new_gates.len()));
                new_gates.push(g.clone());
            }
        }
        for (i, g) in self.gates.iter().enumerate() {
            if g.dead {
                continue;
            }
            let dangling = |id: GateId| id.index() >= map.len() || map[id.index()].is_none();
            if g.pins.iter().any(|p| dangling(p.src)) {
                return Err(NetlistError::DanglingPin {
                    gate: GateId::from_index(i),
                });
            }
        }
        for &i in &self.inputs {
            if i.index() >= map.len() || map[i.index()].is_none() {
                return Err(NetlistError::BadSource { src: i });
            }
        }
        for o in &self.outputs {
            if o.src.index() >= map.len() || map[o.src.index()].is_none() {
                return Err(NetlistError::DanglingOutput {
                    name: o.name.clone(),
                });
            }
        }
        for g in &mut new_gates {
            for p in &mut g.pins {
                p.src = map[p.src.index()].expect("checked above");
            }
        }
        self.gates = new_gates;
        for i in &mut self.inputs {
            *i = map[i.index()].expect("checked above");
        }
        for o in &mut self.outputs {
            o.src = map[o.src.index()].expect("checked above");
        }
        for slot in &mut self.const_cache {
            *slot = slot.and_then(|id| map[id.index()]);
        }
        Ok(map)
    }

    /// A human-readable dump, one gate per line in topological order.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        use fmt::Write;
        let _ = writeln!(s, ".model {}", self.name);
        for id in self.topo_order() {
            let g = self.gate(id);
            let pins: Vec<String> = g.pins.iter().map(|p| p.src.to_string()).collect();
            let name = g.name.as_deref().unwrap_or("");
            let _ = writeln!(
                s,
                "  {id} = {}({}) d={} {name}",
                g.kind,
                pins.join(", "),
                g.delay
            );
        }
        for o in &self.outputs {
            let _ = writeln!(s, "  output {} = {}", o.name, o.src);
        }
        s
    }

    /// Names of all primary inputs, in order.
    pub fn input_names(&self) -> Vec<&str> {
        self.inputs
            .iter()
            .map(|&i| self.gate(i).name.as_deref().unwrap_or(""))
            .collect()
    }

    /// Renames gates so that debugging dumps are stable: assigns `name` to
    /// gate `id`.
    pub fn set_gate_name(&mut self, id: GateId, name: impl Into<String>) {
        self.gate_mut(id).name = Some(name.into());
    }

    /// Finds a live gate by name (inputs included).
    pub fn gate_by_name(&self, name: &str) -> Option<GateId> {
        self.gate_ids()
            .find(|&id| self.gate(id).name.as_deref() == Some(name))
    }

    /// A map from gate name to id for all named live gates.
    pub fn name_map(&self) -> HashMap<String, GateId> {
        self.gate_ids()
            .filter_map(|id| self.gate(id).name.clone().map(|n| (n, id)))
            .collect()
    }
}

/// The arity rule shared by gate construction and [`Network::validate`]:
/// sources take no pins, NOT/BUF exactly one, MUX exactly three, the n-ary
/// gates at least one.
fn arity_ok(kind: GateKind, pins: usize) -> bool {
    match kind {
        GateKind::Input | GateKind::Const(_) => pins == 0,
        GateKind::Not | GateKind::Buf => pins == 1,
        GateKind::Mux => pins == 3,
        _ => pins > 0,
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.simple_gate_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DelayModel;

    fn and_or_net() -> (Network, GateId, GateId) {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(GateKind::And, &[a, b], Delay::new(1));
        let g2 = net.add_gate(GateKind::Or, &[g1, c], Delay::new(1));
        net.add_output("y", g2);
        (net, g1, g2)
    }

    #[test]
    fn build_and_count() {
        let (net, _, _) = and_or_net();
        assert_eq!(net.simple_gate_count(), 2);
        assert_eq!(net.inputs().len(), 3);
        assert_eq!(net.depth(), 2);
        net.validate().unwrap();
    }

    #[test]
    fn zero_delay_buf_not_counted() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b0 = net.add_gate(GateKind::Buf, &[a], Delay::ZERO);
        let b1 = net.add_gate(GateKind::Buf, &[b0], Delay::new(1));
        net.add_output("y", b1);
        assert_eq!(net.simple_gate_count(), 1);
        assert_eq!(net.logic_gate_count(), 2);
    }

    #[test]
    fn topo_order_is_topological() {
        let (net, _, _) = and_or_net();
        let order = net.topo_order();
        let pos: HashMap<GateId, usize> = order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for id in net.gate_ids() {
            for p in &net.gate(id).pins {
                assert!(pos[&p.src] < pos[&id]);
            }
        }
    }

    #[test]
    fn fanouts_inverse_of_pins() {
        let (net, g1, g2) = and_or_net();
        let fo = net.fanouts();
        assert_eq!(fo[g1.index()], vec![ConnRef::new(g2, 0)]);
        let a = net.input_by_name("a").unwrap();
        assert_eq!(fo[a.index()], vec![ConnRef::new(g1, 0)]);
    }

    #[test]
    fn const_cache_shared() {
        let mut net = Network::new("t");
        let c1 = net.add_const(true);
        let c2 = net.add_const(true);
        let c3 = net.add_const(false);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
    }

    #[test]
    fn compact_remaps() {
        let (mut net, g1, g2) = and_or_net();
        // Kill g1 by bypassing it: rewire g2's pin 0 to input a.
        let a = net.input_by_name("a").unwrap();
        net.gate_mut(g2).pins[0] = Pin::new(a);
        net.kill(g1);
        net.validate().unwrap();
        let map = net.compact();
        assert!(map[g1.index()].is_none());
        net.validate().unwrap();
        assert_eq!(net.simple_gate_count(), 1);
    }

    #[test]
    fn validate_catches_bad_arity() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let g = net.add_gate(GateKind::And, &[a, a], Delay::UNIT);
        net.add_output("y", g);
        net.gate_mut(g).kind = GateKind::Mux; // now 2 pins on a mux
        assert!(matches!(net.validate(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn apply_delay_model() {
        let (mut net, g1, _) = and_or_net();
        net.apply_delay_model(DelayModel::Unit);
        assert_eq!(net.gate(g1).delay, Delay::UNIT);
        let a = net.input_by_name("a").unwrap();
        assert_eq!(net.gate(a).delay, Delay::ZERO);
    }

    #[test]
    fn lookup_by_name() {
        let (net, _, _) = and_or_net();
        assert!(net.input_by_name("b").is_some());
        assert!(net.input_by_name("zz").is_none());
        assert_eq!(net.output_by_name("y"), Some(0));
        assert_eq!(net.input_names(), vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "duplicate input name")]
    fn duplicate_input_panics() {
        let mut net = Network::new("t");
        net.add_input("a");
        net.add_input("a");
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        let mut net = Network::new("t");
        let a = net.try_add_input("a").unwrap();
        assert!(matches!(
            net.try_add_input("a"),
            Err(NetlistError::DuplicateInput { name }) if name == "a"
        ));
        assert!(matches!(
            net.try_add_gate(GateKind::Not, &[a, a], Delay::UNIT),
            Err(NetlistError::BadArity {
                kind: GateKind::Not,
                pins: 2,
                ..
            })
        ));
        let bogus = GateId::from_index(99);
        assert!(matches!(
            net.try_add_gate(GateKind::Buf, &[bogus], Delay::UNIT),
            Err(NetlistError::BadSource { src }) if src == bogus
        ));
        // Nothing was added by the failed attempts.
        assert_eq!(net.num_gate_slots(), 1);
        let g = net.try_add_gate(GateKind::Not, &[a], Delay::UNIT).unwrap();
        net.add_output("y", g);
        net.validate().unwrap();
    }

    #[test]
    fn try_depth_and_topo_report_cycles() {
        let (mut net, g1, g2) = and_or_net();
        assert_eq!(net.try_depth().unwrap(), 2);
        net.gate_mut(g1).pins[1] = Pin::new(g2);
        assert_eq!(net.try_topo_order(), Err(NetlistError::Cyclic));
        assert_eq!(net.try_depth(), Err(NetlistError::Cyclic));
    }

    #[test]
    fn try_compact_rejects_dangling_references() {
        let (mut net, g1, g2) = and_or_net();
        net.kill(g1); // g2 still reads g1
        assert!(matches!(
            net.try_compact(),
            Err(NetlistError::DanglingPin { gate }) if gate == g2
        ));
        // The failed compact left the arena untouched (tombstone included).
        assert_eq!(net.num_gate_slots(), 5);
    }

    #[test]
    fn dump_contains_gates() {
        let (net, _, _) = and_or_net();
        let d = net.dump();
        assert!(d.contains("and"));
        assert!(d.contains("or"));
        assert!(d.contains("output y"));
    }
}
