use std::fmt;

use crate::delay::Delay;

/// Identifier of a gate (node) within a [`crate::Network`].
///
/// Gate ids are dense indices into the network's gate arena and remain
/// stable across the transforms in [`crate::transform`]; transforms never
/// reuse ids (deleted gates become tombstones until
/// [`crate::Network::compact`] is called).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The dense index of this gate in the network's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a gate id from a raw arena index.
    ///
    /// Normally obtained from [`crate::Network`] methods; this constructor
    /// exists for serialization and test fixtures.
    pub fn from_index(index: usize) -> Self {
        GateId(u32::try_from(index).expect("gate index exceeds u32"))
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The logic function computed by a gate.
///
/// The KMS algorithm operates on networks of *simple* gates (AND, OR, NOT,
/// and buffers); complex gates (XOR, XNOR, MUX) are supported for circuit
/// entry and are lowered by [`crate::transform::decompose_to_simple`], which
/// assigns the complex gate's delay to the last simple gate in its expansion
/// (paper, Section VI).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// A primary input. Has no pins.
    Input,
    /// A constant 0 or 1. Has no pins.
    Const(bool),
    /// Identity; single pin. Used for the paper's "wire-equivalent" gates.
    Buf,
    /// Inversion; single pin.
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// N-ary exclusive-or (odd parity).
    Xor,
    /// N-ary exclusive-nor (even parity).
    Xnor,
    /// 2:1 multiplexer. Pin 0 is the select, pin 1 the data selected when
    /// the select is 0, pin 2 the data selected when the select is 1.
    Mux,
}

impl GateKind {
    /// `true` for the simple gates of the paper (Section V.1): AND, OR, NOT
    /// — plus buffers, which arise from the constant-propagation rule of
    /// Section VII and behave as single-input ANDs.
    pub fn is_simple(self) -> bool {
        matches!(
            self,
            GateKind::And | GateKind::Or | GateKind::Not | GateKind::Buf
        )
    }

    /// `true` for primary inputs and constants (the sources of the DAG).
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const(_))
    }

    /// `true` if this kind counts toward the paper's "number of simple
    /// gates" circuit-size metric (Section VIII): every logic gate counts,
    /// sources do not. Zero-delay buffers left behind by constant
    /// propagation stand in for wires and are *not* counted.
    pub fn is_logic(self) -> bool {
        !self.is_source()
    }

    /// The *controlling value* of this gate kind (Definition 4.9): the input
    /// value that determines the output regardless of the other inputs.
    ///
    /// Returns `None` for gate kinds without a controlling value (XOR, XNOR,
    /// MUX, NOT, BUF, sources).
    ///
    /// ```
    /// use kms_netlist::GateKind;
    /// assert_eq!(GateKind::And.controlling_value(), Some(false));
    /// assert_eq!(GateKind::Or.controlling_value(), Some(true));
    /// assert_eq!(GateKind::Xor.controlling_value(), None);
    /// ```
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The *noncontrolling value* (Definition 4.9), when one exists.
    pub fn noncontrolling_value(self) -> Option<bool> {
        self.controlling_value().map(|v| !v)
    }

    /// `true` if the gate's output inverts the dominant sense of its inputs
    /// (NOT, NAND, NOR, XNOR).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// The output value this kind produces when a controlling value is
    /// asserted on one of its inputs, when defined.
    pub fn controlled_output(self) -> Option<bool> {
        match self {
            GateKind::And => Some(false),
            GateKind::Nand => Some(true),
            GateKind::Or => Some(true),
            GateKind::Nor => Some(false),
            _ => None,
        }
    }

    /// The inverse of [`GateKind::mnemonic`], for text deserialization.
    pub fn from_mnemonic(s: &str) -> Option<GateKind> {
        Some(match s {
            "input" => GateKind::Input,
            "const0" => GateKind::Const(false),
            "const1" => GateKind::Const(true),
            "buf" => GateKind::Buf,
            "not" => GateKind::Not,
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "mux" => GateKind::Mux,
            _ => return None,
        })
    }

    /// Short lowercase mnemonic, e.g. `"and"`, used by the text dumpers.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Const(false) => "const0",
            GateKind::Const(true) => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One input connection (edge) of a gate: the driving gate plus the wire
/// delay of the connection (Definition 4.1 gives every connection its own
/// delay `d(c)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pin {
    /// The gate whose output drives this connection.
    pub src: GateId,
    /// The delay of the connection itself (zero in the paper's experiments).
    pub wire_delay: Delay,
}

impl Pin {
    /// A connection from `src` with zero wire delay.
    pub fn new(src: GateId) -> Self {
        Pin {
            src,
            wire_delay: Delay::ZERO,
        }
    }

    /// A connection from `src` with the given wire delay.
    pub fn with_delay(src: GateId, wire_delay: Delay) -> Self {
        Pin { src, wire_delay }
    }
}

/// A reference to a specific connection in the network: input pin `pin` of
/// gate `gate`.
///
/// Stuck-at faults and path steps are identified by `ConnRef`s; two
/// connections from the same driver to the same gate are distinct faults and
/// distinct path edges (the paper defines paths over connections for exactly
/// this reason, Definition 4.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnRef {
    /// The sink gate of the connection.
    pub gate: GateId,
    /// The index of the input pin on the sink gate.
    pub pin: usize,
}

impl ConnRef {
    /// Creates a connection reference for input pin `pin` of `gate`.
    pub fn new(gate: GateId, pin: usize) -> Self {
        ConnRef { gate, pin }
    }
}

impl fmt::Display for ConnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.gate, self.pin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        for k in [
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux,
            GateKind::Not,
            GateKind::Buf,
            GateKind::Input,
        ] {
            assert_eq!(k.controlling_value(), None, "{k}");
            assert_eq!(k.noncontrolling_value(), None, "{k}");
        }
    }

    #[test]
    fn noncontrolling_is_complement() {
        assert_eq!(GateKind::And.noncontrolling_value(), Some(true));
        assert_eq!(GateKind::Or.noncontrolling_value(), Some(false));
    }

    #[test]
    fn controlled_outputs() {
        assert_eq!(GateKind::And.controlled_output(), Some(false));
        assert_eq!(GateKind::Nand.controlled_output(), Some(true));
        assert_eq!(GateKind::Or.controlled_output(), Some(true));
        assert_eq!(GateKind::Nor.controlled_output(), Some(false));
        assert_eq!(GateKind::Xor.controlled_output(), None);
    }

    #[test]
    fn simplicity() {
        assert!(GateKind::And.is_simple());
        assert!(GateKind::Buf.is_simple());
        assert!(!GateKind::Xor.is_simple());
        assert!(!GateKind::Mux.is_simple());
        assert!(!GateKind::Input.is_simple());
        assert!(GateKind::Input.is_source());
        assert!(GateKind::Const(true).is_source());
        assert!(!GateKind::Or.is_source());
    }

    #[test]
    fn display_forms() {
        assert_eq!(GateId::from_index(3).to_string(), "g3");
        assert_eq!(ConnRef::new(GateId::from_index(3), 1).to_string(), "g3.1");
        assert_eq!(GateKind::Xnor.to_string(), "xnor");
        assert_eq!(GateKind::Const(false).to_string(), "const0");
    }
}
