//! `kms-sweep` — static semantic sweep of BLIF/ISCAS netlists.
//!
//! Runs the `kms-analysis` pass (structural hashing, SAT sweeping, static
//! implication learning) over each input network and prints the
//! [`StaticRedundancyReport`]: every stuck-at fault of the collapsed fault
//! set that the pass proves untestable without ATPG, each with a
//! machine-checkable witness, plus the node-merge/constant statistics.
//!
//! ```text
//! kms-sweep [OPTIONS] <file.blif | -> [more files...]
//!   -f, --format <text|json>  output format (default: text)
//!       --iscas               parse inputs as ISCAS-85 instead of BLIF
//!       --no-sat-sweep        skip SAT sweeping (strash + implications only)
//!       --no-learning         skip static implication learning
//!       --seed <N>            simulation seed for the sweep signatures
//!   -q, --quiet               suppress output; just set the exit code
//! ```
//!
//! Exit status: 0 on success (whether or not redundancies were found),
//! 1 when any file fails to parse, 2 on usage errors.
//!
//! [`StaticRedundancyReport`]: kms::analysis::StaticRedundancyReport

use std::io::Read as _;

use kms::analysis::{AnalysisOptions, FaultRef, StaticAnalysis};
use kms::atpg::{collapsed_faults, FaultSite};
use kms::blif::{parse_blif, parse_iscas};

struct Args {
    inputs: Vec<String>,
    json: bool,
    iscas: bool,
    opts: AnalysisOptions,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        inputs: Vec::new(),
        json: false,
        iscas: false,
        opts: AnalysisOptions::default(),
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-f" | "--format" => {
                args.json = match it.next().as_deref() {
                    Some("text") => false,
                    Some("json") => true,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--iscas" => args.iscas = true,
            "--no-sat-sweep" => args.opts.sat_sweep = false,
            "--no-learning" => args.opts.static_learning = false,
            "--seed" => {
                args.opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: kms-sweep [-f text|json] [--iscas] [--no-sat-sweep] \
                     [--no-learning] [--seed N] [-q] <file.blif | ->..."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unexpected argument {other:?}"));
            }
            other => args.inputs.push(other.to_string()),
        }
    }
    if args.inputs.is_empty() {
        return Err("missing input file (use '-' for stdin)".into());
    }
    Ok(args)
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        Ok(s)
    } else {
        std::fs::read_to_string(path)
    }
}

fn sweep_file(path: &str, args: &Args) -> Result<String, String> {
    let text = read_input(path).map_err(|e| format!("{path}: {e}"))?;
    let net = if args.iscas {
        parse_iscas(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        parse_blif(&text)
            .map(|c| c.network)
            .map_err(|e| format!("{path}: {e}"))?
    };
    let faults: Vec<(FaultRef, bool)> = collapsed_faults(&net)
        .into_iter()
        .map(|f| {
            let site = match f.site {
                FaultSite::GateOutput(g) => FaultRef::Output(g),
                FaultSite::Conn(c) => FaultRef::Conn(c),
            };
            (site, f.stuck)
        })
        .collect();
    let analysis = StaticAnalysis::build(&net, &args.opts);
    let report = analysis.report(&faults);
    Ok(if args.json {
        report.render_json()
    } else {
        report.render_text()
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    for path in &args.inputs {
        match sweep_file(path, &args) {
            Ok(rendered) => {
                if !args.quiet {
                    print!("{rendered}");
                }
            }
            Err(msg) => {
                failed = true;
                if !args.quiet {
                    eprintln!("error: {msg}");
                }
            }
        }
    }
    std::process::exit(i32::from(failed));
}
