//! `kms-sweep` — static semantic sweep of BLIF/ISCAS netlists.
//!
//! Runs the `kms-analysis` pass (structural hashing, SAT sweeping, static
//! implication learning) over each input network and prints the
//! [`StaticRedundancyReport`]: every stuck-at fault of the collapsed fault
//! set that the pass proves untestable without ATPG, each with a
//! machine-checkable witness, plus the node-merge/constant statistics.
//!
//! ```text
//! kms-sweep [OPTIONS] <file.blif | -> [more files...]
//!   -f, --format <text|json>  output format (default: text)
//!       --iscas               parse inputs as ISCAS-85 instead of BLIF
//!       --no-sat-sweep        skip SAT sweeping (strash + implications only)
//!       --no-learning         skip static implication learning
//!       --seed <N>            simulation seed for the sweep signatures
//!       --certify             re-derive every sweep claim as an UNSAT query,
//!                             log a DRAT proof, and re-check it with the
//!                             independent checker; print the merged ledger
//!       --dataflow            additionally run the kms-dataflow pass
//!                             (ternary/cofactor constants, CODCs, recursive
//!                             learning), print its report, and apply
//!                             SAT-confirmed observability-equivalent merges
//!   -j, --jobs <N>            sweep N input files concurrently (default 0 =
//!                             available parallelism, capped; 1 forces fully
//!                             in-line execution); reports and the exit code
//!                             are identical at any N — output stays in
//!                             input order
//!   -q, --quiet               suppress output; just set the exit code
//! ```
//!
//! Exit status: 0 when no file has findings, 1 when any file has statically
//! proved redundancies or a `--certify` proof fails to check, 2 on usage
//! errors or when any file fails to read or parse, 3 when the sweep
//! completed but degraded — a worker panicked on some file, so that file's
//! verdict is unknown and the remaining reports still printed. Under
//! `--dataflow` the dataflow tier's extra proofs count as findings too.
//!
//! [`StaticRedundancyReport`]: kms::analysis::StaticRedundancyReport

use std::io::Read as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use kms::analysis::{AnalysisOptions, FaultRef, StaticAnalysis};
use kms::atpg::{collapsed_faults, FaultSite};
use kms::blif::{parse_blif, parse_iscas};
use kms::dataflow::{observability_merges, DataflowAnalysis, DataflowOptions};
use kms::proof::CertificationReport;

struct Args {
    inputs: Vec<String>,
    json: bool,
    iscas: bool,
    opts: AnalysisOptions,
    dataflow: bool,
    jobs: usize,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        inputs: Vec::new(),
        json: false,
        iscas: false,
        opts: AnalysisOptions::default(),
        dataflow: false,
        jobs: 0,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-f" | "--format" => {
                args.json = match it.next().as_deref() {
                    Some("text") => false,
                    Some("json") => true,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--iscas" => args.iscas = true,
            "--no-sat-sweep" => args.opts.sat_sweep = false,
            "--no-learning" => args.opts.static_learning = false,
            "--certify" => args.opts.certify = true,
            "--dataflow" => args.dataflow = true,
            "--seed" => {
                args.opts.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "-j" | "--jobs" => {
                let n = it.next().ok_or("missing value for --jobs")?;
                args.jobs = n.parse().map_err(|_| format!("bad job count {n:?}"))?;
            }
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: kms-sweep [-f text|json] [--iscas] [--no-sat-sweep] \
                     [--no-learning] [--seed N] [--certify] [--dataflow] [-j N] \
                     [-q] <file.blif | ->..."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unexpected argument {other:?}"));
            }
            other => args.inputs.push(other.to_string()),
        }
    }
    if args.inputs.is_empty() {
        return Err("missing input file (use '-' for stdin)".into());
    }
    Ok(args)
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        Ok(s)
    } else {
        std::fs::read_to_string(path)
    }
}

/// Sweeps one file; returns the rendered report, the number of statically
/// proved redundant faults, and the certification ledger when `--certify`.
fn sweep_file(
    path: &str,
    args: &Args,
) -> Result<(String, usize, Option<CertificationReport>), String> {
    let text = read_input(path).map_err(|e| format!("{path}: {e}"))?;
    let net = if args.iscas {
        parse_iscas(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        parse_blif(&text)
            .map(|c| c.network)
            .map_err(|e| format!("{path}: {e}"))?
    };
    let faults: Vec<(FaultRef, bool)> = collapsed_faults(&net)
        .into_iter()
        .map(|f| {
            let site = match f.site {
                FaultSite::GateOutput(g) => FaultRef::Output(g),
                FaultSite::Conn(c) => FaultRef::Conn(c),
            };
            (site, f.stuck)
        })
        .collect();
    let analysis = StaticAnalysis::build(&net, &args.opts);
    let report = analysis.report(&faults);
    let mut rendered = if args.json {
        report.render_json()
    } else {
        report.render_text()
    };
    let mut proved = report.proved_count();
    if args.dataflow {
        let df = DataflowAnalysis::build(&net, &analysis, &DataflowOptions::default());
        let df_report = df.report(&analysis, &faults);
        proved += df_report.beyond_implic;
        let merges = observability_merges(&net, args.opts.seed, 8, 64, 4096);
        let beyond = merges.merges.iter().filter(|m| m.beyond_functional).count();
        if args.json {
            rendered.push_str(&df_report.render_json());
            rendered.push_str(&format!(
                "{{\"dataflow_merges\": {}, \"beyond_functional\": {}, \
                 \"miter_checks\": {}}}\n",
                merges.merges.len(),
                beyond,
                merges.miter_checks
            ));
        } else {
            rendered.push_str(&df_report.render_text());
            rendered.push_str(&format!(
                "observability merges: {} node(s) merged ({} beyond functional \
                 equivalence, {} miter checks)\n",
                merges.merges.len(),
                beyond,
                merges.miter_checks
            ));
        }
    }
    Ok((rendered, proved, analysis.certification().cloned()))
}

/// What one file's sweep produced. `Unknown` is the panic-isolated
/// outcome: the worker unwound mid-sweep, so nothing can be said about
/// the file — the run degrades (exit 3) instead of aborting the whole
/// batch.
enum Outcome {
    Done(String, usize, Option<CertificationReport>),
    Error(String),
    Unknown(String),
}

/// Sweeps one file with the worker shielded by `catch_unwind`: a panic
/// (a parser or solver bug on one pathological netlist) is converted
/// into [`Outcome::Unknown`] so the other files still sweep and print.
fn sweep_guarded(path: &str, args: &Args) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| sweep_file(path, args))) {
        Ok(Ok((rendered, proved, cert))) => Outcome::Done(rendered, proved, cert),
        Ok(Err(msg)) => Outcome::Error(msg),
        Err(payload) => {
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Outcome::Unknown(format!("{path}: sweep worker panicked: {what}"))
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            std::process::exit(2);
        }
    };
    let jobs = match args.jobs {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
        n => n,
    }
    .min(args.inputs.len());
    // Sweep files concurrently, but aggregate and print strictly in input
    // order: results land in per-file slots, so the output and the exit
    // code are identical at any job count. Slots use poisoning-aware
    // locking: a panic inside `sweep_guarded` is already caught, so a
    // poisoned slot can only mean a panic in the store itself — the
    // value was fully written or not written at all, and either way the
    // data is safe to read.
    let mut results: Vec<Option<Outcome>> = (0..args.inputs.len()).map(|_| None).collect();
    if jobs <= 1 {
        for (path, slot) in args.inputs.iter().zip(results.iter_mut()) {
            *slot = Some(sweep_guarded(path, &args));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<Outcome>>> = results
            .iter()
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(path) = args.inputs.get(i) else {
                        break;
                    };
                    *kms::sat::lock_unpoisoned(&slots[i]) = Some(sweep_guarded(path, &args));
                });
            }
        });
        for (slot, out) in slots.into_iter().zip(results.iter_mut()) {
            *out = slot
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
    let mut io_failed = false;
    let mut unknown_files = 0usize;
    let mut findings = 0usize;
    let mut ledger = args.opts.certify.then(CertificationReport::default);
    for result in results {
        match result.expect("every input swept") {
            Outcome::Done(rendered, proved, certification) => {
                findings += proved;
                if let (Some(total), Some(cert)) = (ledger.as_mut(), certification.as_ref()) {
                    total.merge(cert);
                }
                if !args.quiet {
                    print!("{rendered}");
                }
            }
            Outcome::Error(msg) => {
                io_failed = true;
                if !args.quiet {
                    eprintln!("error: {msg}");
                }
            }
            Outcome::Unknown(msg) => {
                unknown_files += 1;
                eprintln!("warning: {msg}; verdict for this file is unknown");
            }
        }
    }
    let mut check_failed = false;
    if let Some(ledger) = &ledger {
        if !args.quiet {
            if args.json {
                print!("{}", ledger.render_json());
            } else {
                print!("{}", ledger.render_text());
            }
        }
        if !ledger.all_verified() {
            check_failed = true;
            eprintln!("error: certification failed — some sweep claim has no checkable proof");
        }
    }
    // Precedence: hard failure (2) over degraded-but-complete (3) over
    // findings (1) — a degraded sweep cannot certify its finding count,
    // so the caller must see the degradation first.
    let code = if io_failed {
        2
    } else if unknown_files > 0 {
        3
    } else {
        i32::from(findings > 0 || check_failed)
    };
    std::process::exit(code);
}
