//! `kms` — command-line front end: read a BLIF design, run the KMS
//! delay-preserving redundancy removal, and write the irredundant result.
//!
//! ```text
//! kms [OPTIONS] <input.blif>
//!   -o, --output <file>     write the result as BLIF (default: stdout)
//!   -m, --model <unit|section3>
//!                           delay model applied to the simple-gate network
//!   -c, --condition <static|viability>
//!                           while-loop condition (default: static)
//!   -a, --arrival <input>=<time>
//!                           per-input arrival offset (repeatable)
//!   -e, --engine <shared|sat>
//!                           classification engine for the removal phase
//!                           (default: shared — per-worker incremental
//!                           solvers; sat re-encodes per fault)
//!   -j, --jobs <N>          worker threads for the shared engine
//!                           (default 0 = available parallelism, capped;
//!                           1 forces fully in-line execution)
//!       --prescreen <static|dataflow>
//!                           with the shared engine: run the named static
//!                           prescreen tier before the per-fault queries
//!                           (dataflow implies static); the report is
//!                           bit-identical either way, only the cost moves
//!       --certify           log a DRAT proof for every UNSAT verdict the
//!                           run depends on and re-check each with the
//!                           independent proof checker
//!       --fault-budget <spec>
//!                           per-fault solver budget for the removal phase
//!                           (shared engine only): a bare number caps
//!                           conflicts; or comma-separated
//!                           conflicts=N,props=N,ms=N. A fault whose query
//!                           exhausts the budget is reported Unknown and
//!                           the run completes degraded (exit 3)
//!       --checkpoint <file> write a digest-guarded checkpoint after each
//!                           loop iteration; a completed run removes it
//!       --resume <file>     resume a previous run from its checkpoint
//!                           (the input, arrivals, and semantic options
//!                           must match — guarded by a fingerprint)
//!   -f, --format <text|json>
//!                           report format on stderr (default: text); json
//!                           includes per-phase solver counters and the
//!                           certification ledger
//!   -q, --quiet             suppress the report
//! ```
//!
//! Exit status: 0 on success, 1 when a `--certify` proof fails to check,
//! 2 on usage errors or when the input fails to read or parse, 3 when the
//! run completed but degraded — some faults stayed Unknown under
//! `--fault-budget` (or after an isolated worker panic), so full
//! testability of the result was not proved.

use std::error::Error;
use std::io::Read as _;

use kms::atpg::FaultBudget;
use kms::blif::{parse_blif, write_blif};
use kms::core::{kms_with_control, Checkpoint, Condition, KmsOptions, RunControl};
use kms::netlist::{transform, DelayModel};
use kms::timing::InputArrivals;

struct Args {
    input: String,
    output: Option<String>,
    model: DelayModel,
    condition: Condition,
    arrivals: Vec<(String, i64)>,
    shared_engine: bool,
    jobs: usize,
    prescreen_static: bool,
    prescreen_dataflow: bool,
    certify: bool,
    fault_budget: Option<FaultBudget>,
    checkpoint: Option<String>,
    resume: Option<String>,
    json: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        output: None,
        model: DelayModel::Unit,
        condition: Condition::StaticSensitization,
        arrivals: Vec::new(),
        shared_engine: true,
        jobs: 0,
        prescreen_static: false,
        prescreen_dataflow: false,
        certify: false,
        fault_budget: None,
        checkpoint: None,
        resume: None,
        json: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => args.output = Some(it.next().ok_or("missing value for --output")?),
            "-m" | "--model" => {
                args.model = match it.next().as_deref() {
                    Some("unit") => DelayModel::Unit,
                    Some("section3") => DelayModel::section3(),
                    other => return Err(format!("unknown model {other:?}")),
                }
            }
            "-c" | "--condition" => {
                args.condition = match it.next().as_deref() {
                    Some("static") => Condition::StaticSensitization,
                    Some("viability") => Condition::Viability,
                    other => return Err(format!("unknown condition {other:?}")),
                }
            }
            "-a" | "--arrival" => {
                let spec = it.next().ok_or("missing value for --arrival")?;
                let (name, t) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("expected <input>=<time>, got {spec:?}"))?;
                let t: i64 = t.parse().map_err(|_| format!("bad time in {spec:?}"))?;
                args.arrivals.push((name.to_string(), t));
            }
            "-e" | "--engine" => {
                args.shared_engine = match it.next().as_deref() {
                    Some("shared") => true,
                    Some("sat") => false,
                    other => return Err(format!("unknown engine {other:?}")),
                }
            }
            "-j" | "--jobs" => {
                let n = it.next().ok_or("missing value for --jobs")?;
                args.jobs = n.parse().map_err(|_| format!("bad job count {n:?}"))?;
            }
            "--prescreen" => match it.next().as_deref() {
                Some("static") => args.prescreen_static = true,
                Some("dataflow") => {
                    args.prescreen_static = true;
                    args.prescreen_dataflow = true;
                }
                other => return Err(format!("unknown prescreen tier {other:?}")),
            },
            "--certify" => args.certify = true,
            "--fault-budget" => {
                let spec = it.next().ok_or("missing value for --fault-budget")?;
                args.fault_budget = Some(FaultBudget::parse(&spec)?);
            }
            "--checkpoint" => {
                args.checkpoint = Some(it.next().ok_or("missing value for --checkpoint")?)
            }
            "--resume" => args.resume = Some(it.next().ok_or("missing value for --resume")?),
            "-f" | "--format" => {
                args.json = match it.next().as_deref() {
                    Some("text") => false,
                    Some("json") => true,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => {
                eprintln!("usage: kms [-o out.blif] [-m unit|section3] [-c static|viability] [-a input=time]... [-e shared|sat] [-j N] [--prescreen static|dataflow] [--certify] [--fault-budget SPEC] [--checkpoint FILE] [--resume FILE] [-f text|json] <input.blif | ->");
                std::process::exit(0);
            }
            other if args.input.is_empty() => args.input = other.to_string(),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if args.input.is_empty() {
        return Err("missing input file (use '-' for stdin)".into());
    }
    if args.fault_budget.is_some() && !args.shared_engine {
        return Err("--fault-budget requires the shared engine (-e shared)".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn run(args: &Args) -> Result<i32, Box<dyn Error>> {
    let text = if args.input == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        s
    } else {
        std::fs::read_to_string(&args.input)?
    };
    let circuit = parse_blif(&text)?;
    let mut net = circuit.network;
    transform::decompose_to_simple(&mut net);
    net.apply_delay_model(args.model);

    let mut arrivals = InputArrivals::zero();
    for (name, t) in &args.arrivals {
        let id = net
            .input_by_name(name)
            .ok_or_else(|| format!("no such input {name:?}"))?;
        arrivals.set(id, *t);
    }

    let engine = if args.shared_engine {
        kms::atpg::Engine::SharedSat(kms::atpg::ParallelOptions {
            jobs: args.jobs,
            static_prescreen: args.prescreen_static,
            prescreen_dataflow: args.prescreen_dataflow,
            fault_budget: args.fault_budget,
            ..Default::default()
        })
    } else {
        kms::atpg::Engine::Sat
    };
    let options = KmsOptions {
        condition: args.condition,
        engine,
        certify: args.certify,
        ..Default::default()
    };
    let control = RunControl {
        checkpoint: args.checkpoint.as_ref().map(std::path::PathBuf::from),
        resume: match &args.resume {
            Some(path) => Some(
                Checkpoint::load(std::path::Path::new(path))
                    .map_err(|e| format!("cannot resume from {path}: {e}"))?,
            ),
            None => None,
        },
        stop_after: None,
    };
    let report = kms_with_control(&mut net, &arrivals, options, control)?
        .expect("a run without stop_after always completes");

    if !args.quiet && args.json {
        eprintln!("{}", report.render_json());
    }
    if !args.quiet && !args.json {
        eprint!("{}", kms::netlist::NetworkStats::of(&net));
        eprintln!(
            "{}: gates {} -> {}, loop iterations {}, duplicated {}, \
             redundancies removed {}, topological delay {} -> {}{}",
            net.name(),
            report.gates_before,
            report.gates_after,
            report.iterations.len(),
            report.duplicated_gates,
            report.removed_redundancies.len(),
            report.topological_before,
            report.topological_after,
            if circuit.latches.is_empty() {
                String::new()
            } else {
                format!(" ({} latches cut)", circuit.latches.len())
            }
        );
        let t = &report.timings;
        eprintln!(
            "phases: engine {:.3?}, path_enum {:.3?}, oracle {:.3?}, transform {:.3?}, atpg {:.3?}",
            t.engine, t.path_enum, t.oracle, t.transform, t.atpg
        );
        for (phase, s) in [
            ("oracle", &report.oracle_solver),
            ("atpg", &report.atpg_solver),
        ] {
            eprintln!(
                "solver[{phase}]: conflicts {}, decisions {}, propagations {}, \
                 restarts {}, learned {}, deleted {}, minimized lits {}, \
                 mean lbd {:.2}, arena gc {}, blocker hits {}",
                s.conflicts,
                s.decisions,
                s.propagations,
                s.restarts,
                s.learned_total,
                s.deleted_total,
                s.minimized_lits,
                if s.learned_total > 0 {
                    s.lbd_sum as f64 / s.learned_total as f64
                } else {
                    0.0
                },
                s.arena_gc,
                s.blocker_hits
            );
        }
    }

    let mut check_failed = false;
    if let Some(certification) = &report.certification {
        if !args.quiet && !args.json {
            eprint!("{}", certification.render_text());
        }
        if !certification.all_verified() {
            check_failed = true;
            eprintln!("error: certification failed — some solver verdict has no checkable proof");
        }
    }

    let out = write_blif(&net);
    match &args.output {
        Some(path) => std::fs::write(path, out)?,
        None => print!("{out}"),
    }
    // Degraded (3) outranks a failed certification check (1): with
    // undecided faults the output is not proved fully testable, which the
    // caller must learn before trusting any other verdict.
    if report.unknown > 0 {
        eprintln!(
            "warning: {} fault(s) left undecided by the removal phase \
             (budget exhausted or worker panicked); the output may still \
             hold redundancies among them",
            report.unknown
        );
        return Ok(3);
    }
    Ok(i32::from(check_failed))
}
