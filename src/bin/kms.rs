//! `kms` — command-line front end: read a BLIF design, run the KMS
//! delay-preserving redundancy removal, and write the irredundant result.
//!
//! ```text
//! kms [OPTIONS] <input.blif>
//!   -o, --output <file>     write the result as BLIF (default: stdout)
//!   -m, --model <unit|section3>
//!                           delay model applied to the simple-gate network
//!   -c, --condition <static|viability>
//!                           while-loop condition (default: static)
//!   -a, --arrival <input>=<time>
//!                           per-input arrival offset (repeatable)
//!   -e, --engine <shared|sat>
//!                           classification engine for the removal phase
//!                           (default: shared — per-worker incremental
//!                           solvers; sat re-encodes per fault)
//!   -j, --jobs <N>          worker threads for the shared engine
//!                           (default 0 = available parallelism, capped;
//!                           1 forces fully in-line execution)
//!       --prescreen <static|dataflow>
//!                           with the shared engine: run the named static
//!                           prescreen tier before the per-fault queries
//!                           (dataflow implies static); the report is
//!                           bit-identical either way, only the cost moves
//!       --certify           log a DRAT proof for every UNSAT verdict the
//!                           run depends on and re-check each with the
//!                           independent proof checker
//!   -f, --format <text|json>
//!                           report format on stderr (default: text); json
//!                           includes per-phase solver counters and the
//!                           certification ledger
//!   -q, --quiet             suppress the report
//! ```
//!
//! Exit status: 0 on success, 1 when a `--certify` proof fails to check,
//! 2 on usage errors or when the input fails to read or parse.

use std::error::Error;
use std::io::Read as _;

use kms::blif::{parse_blif, write_blif};
use kms::core::{kms as run_kms, Condition, KmsOptions};
use kms::netlist::{transform, DelayModel};
use kms::timing::InputArrivals;

struct Args {
    input: String,
    output: Option<String>,
    model: DelayModel,
    condition: Condition,
    arrivals: Vec<(String, i64)>,
    shared_engine: bool,
    jobs: usize,
    prescreen_static: bool,
    prescreen_dataflow: bool,
    certify: bool,
    json: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        output: None,
        model: DelayModel::Unit,
        condition: Condition::StaticSensitization,
        arrivals: Vec::new(),
        shared_engine: true,
        jobs: 0,
        prescreen_static: false,
        prescreen_dataflow: false,
        certify: false,
        json: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => args.output = Some(it.next().ok_or("missing value for --output")?),
            "-m" | "--model" => {
                args.model = match it.next().as_deref() {
                    Some("unit") => DelayModel::Unit,
                    Some("section3") => DelayModel::section3(),
                    other => return Err(format!("unknown model {other:?}")),
                }
            }
            "-c" | "--condition" => {
                args.condition = match it.next().as_deref() {
                    Some("static") => Condition::StaticSensitization,
                    Some("viability") => Condition::Viability,
                    other => return Err(format!("unknown condition {other:?}")),
                }
            }
            "-a" | "--arrival" => {
                let spec = it.next().ok_or("missing value for --arrival")?;
                let (name, t) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("expected <input>=<time>, got {spec:?}"))?;
                let t: i64 = t.parse().map_err(|_| format!("bad time in {spec:?}"))?;
                args.arrivals.push((name.to_string(), t));
            }
            "-e" | "--engine" => {
                args.shared_engine = match it.next().as_deref() {
                    Some("shared") => true,
                    Some("sat") => false,
                    other => return Err(format!("unknown engine {other:?}")),
                }
            }
            "-j" | "--jobs" => {
                let n = it.next().ok_or("missing value for --jobs")?;
                args.jobs = n.parse().map_err(|_| format!("bad job count {n:?}"))?;
            }
            "--prescreen" => match it.next().as_deref() {
                Some("static") => args.prescreen_static = true,
                Some("dataflow") => {
                    args.prescreen_static = true;
                    args.prescreen_dataflow = true;
                }
                other => return Err(format!("unknown prescreen tier {other:?}")),
            },
            "--certify" => args.certify = true,
            "-f" | "--format" => {
                args.json = match it.next().as_deref() {
                    Some("text") => false,
                    Some("json") => true,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => {
                eprintln!("usage: kms [-o out.blif] [-m unit|section3] [-c static|viability] [-a input=time]... [-e shared|sat] [-j N] [--prescreen static|dataflow] [--certify] [-f text|json] <input.blif | ->");
                std::process::exit(0);
            }
            other if args.input.is_empty() => args.input = other.to_string(),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if args.input.is_empty() {
        return Err("missing input file (use '-' for stdin)".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn run(args: &Args) -> Result<i32, Box<dyn Error>> {
    let text = if args.input == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        s
    } else {
        std::fs::read_to_string(&args.input)?
    };
    let circuit = parse_blif(&text)?;
    let mut net = circuit.network;
    transform::decompose_to_simple(&mut net);
    net.apply_delay_model(args.model);

    let mut arrivals = InputArrivals::zero();
    for (name, t) in &args.arrivals {
        let id = net
            .input_by_name(name)
            .ok_or_else(|| format!("no such input {name:?}"))?;
        arrivals.set(id, *t);
    }

    let engine = if args.shared_engine {
        kms::atpg::Engine::SharedSat(kms::atpg::ParallelOptions {
            jobs: args.jobs,
            static_prescreen: args.prescreen_static,
            prescreen_dataflow: args.prescreen_dataflow,
            ..Default::default()
        })
    } else {
        kms::atpg::Engine::Sat
    };
    let report = run_kms(
        &mut net,
        &arrivals,
        KmsOptions {
            condition: args.condition,
            engine,
            certify: args.certify,
            ..Default::default()
        },
    )?;

    if !args.quiet && args.json {
        eprintln!("{}", report.render_json());
    }
    if !args.quiet && !args.json {
        eprint!("{}", kms::netlist::NetworkStats::of(&net));
        eprintln!(
            "{}: gates {} -> {}, loop iterations {}, duplicated {}, \
             redundancies removed {}, topological delay {} -> {}{}",
            net.name(),
            report.gates_before,
            report.gates_after,
            report.iterations.len(),
            report.duplicated_gates,
            report.removed_redundancies.len(),
            report.topological_before,
            report.topological_after,
            if circuit.latches.is_empty() {
                String::new()
            } else {
                format!(" ({} latches cut)", circuit.latches.len())
            }
        );
        let t = &report.timings;
        eprintln!(
            "phases: engine {:.3?}, path_enum {:.3?}, oracle {:.3?}, transform {:.3?}, atpg {:.3?}",
            t.engine, t.path_enum, t.oracle, t.transform, t.atpg
        );
        for (phase, s) in [
            ("oracle", &report.oracle_solver),
            ("atpg", &report.atpg_solver),
        ] {
            eprintln!(
                "solver[{phase}]: conflicts {}, decisions {}, propagations {}, \
                 restarts {}, learned {}, deleted {}, minimized lits {}, \
                 mean lbd {:.2}, arena gc {}, blocker hits {}",
                s.conflicts,
                s.decisions,
                s.propagations,
                s.restarts,
                s.learned_total,
                s.deleted_total,
                s.minimized_lits,
                if s.learned_total > 0 {
                    s.lbd_sum as f64 / s.learned_total as f64
                } else {
                    0.0
                },
                s.arena_gc,
                s.blocker_hits
            );
        }
    }

    let mut check_failed = false;
    if let Some(certification) = &report.certification {
        if !args.quiet && !args.json {
            eprint!("{}", certification.render_text());
        }
        if !certification.all_verified() {
            check_failed = true;
            eprintln!("error: certification failed — some solver verdict has no checkable proof");
        }
    }

    let out = write_blif(&net);
    match &args.output {
        Some(path) => std::fs::write(path, out)?,
        None => print!("{out}"),
    }
    Ok(i32::from(check_failed))
}
