//! `kms-lint` — lint BLIF/ISCAS netlists with the structural checker.
//!
//! ```text
//! kms-lint [OPTIONS] <file.blif | -> [more files...]
//!   -f, --format <text|json>  output format (default: text)
//!       --iscas               parse inputs as ISCAS-85 instead of BLIF
//!       --allow <check>       disable a check (repeatable)
//!       --warn <check>        demote a check to a warning (repeatable)
//!       --deny <check>        promote a check to an error (repeatable)
//!   -l, --list-checks         print the check catalog and exit
//!   -q, --quiet               suppress output; just set the exit code
//! ```
//!
//! Exit status: 0 when every file is clean or has only warnings, 1 when
//! any file has errors, 2 on usage errors or when any file fails to read
//! or parse.

use std::io::Read as _;

use kms::blif::{parse_blif, parse_iscas, BlifError};
use kms::lint::{CheckId, Level, LintConfig, LintReport, NetworkLint};

struct Args {
    inputs: Vec<String>,
    json: bool,
    iscas: bool,
    config: LintConfig,
    quiet: bool,
}

fn parse_level_arg(
    config: &mut LintConfig,
    level: Level,
    value: Option<String>,
) -> Result<(), String> {
    let value = value.ok_or("missing check id (see --list-checks)")?;
    let check = CheckId::parse(&value)
        .ok_or_else(|| format!("unknown check {value:?} (see --list-checks)"))?;
    config.set_level(check, level);
    Ok(())
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        inputs: Vec::new(),
        json: false,
        iscas: false,
        config: LintConfig::default(),
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "-f" | "--format" => {
                args.json = match it.next().as_deref() {
                    Some("text") => false,
                    Some("json") => true,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--iscas" => args.iscas = true,
            "--allow" => parse_level_arg(&mut args.config, Level::Allow, it.next())?,
            "--warn" => parse_level_arg(&mut args.config, Level::Warn, it.next())?,
            "--deny" => parse_level_arg(&mut args.config, Level::Deny, it.next())?,
            "-l" | "--list-checks" => {
                for c in CheckId::ALL {
                    println!("{:<16} {}", c.as_str(), c.description());
                }
                std::process::exit(0);
            }
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: kms-lint [-f text|json] [--iscas] [--allow|--warn|--deny <check>]... \
                     [-q] <file.blif | ->..."
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unexpected argument {other:?}"));
            }
            other => args.inputs.push(other.to_string()),
        }
    }
    if args.inputs.is_empty() {
        return Err("missing input file (use '-' for stdin)".into());
    }
    Ok(args)
}

fn read_input(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        Ok(s)
    } else {
        std::fs::read_to_string(path)
    }
}

/// Lints one file; returns `(report, network_name)`, or a message for
/// failures that happen before linting is possible.
fn lint_file(path: &str, args: &Args) -> Result<(LintReport, String), String> {
    let text = read_input(path).map_err(|e| format!("{path}: {e}"))?;
    let parsed = if args.iscas {
        parse_iscas(&text)
    } else {
        parse_blif(&text).map(|c| c.network)
    };
    match parsed {
        Ok(net) => {
            let name = net.name().to_string();
            Ok((net.lint_with(&args.config), name))
        }
        // The reader's built-in lint gate fired: report that check's
        // findings under the user's format instead of a bare parse error.
        Err(BlifError::Lint(report)) => Ok((report, path.to_string())),
        Err(e) => Err(format!("{path}: {e}")),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    let mut io_failed = false;
    for path in &args.inputs {
        match lint_file(path, &args) {
            Ok((report, name)) => {
                failed |= report.has_errors();
                if args.quiet {
                    continue;
                }
                if args.json {
                    print!("{}", report.to_json(&name));
                } else if report.is_clean() {
                    println!("{path}: clean");
                } else {
                    println!("{path}:");
                    print!("{}", report.to_text());
                }
            }
            Err(msg) => {
                io_failed = true;
                if !args.quiet {
                    eprintln!("error: {msg}");
                }
            }
        }
    }
    std::process::exit(if io_failed { 2 } else { i32::from(failed) });
}
