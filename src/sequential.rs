//! Sequential-circuit support: the paper's Section I generalization.
//!
//! "This algorithm may be generalized to sequential circuits by extracting
//! the combinational portion from the sequential circuit since the cycle
//! time of a synchronous sequential circuit is determined by the delay of
//! the combinational portions between latches."
//!
//! [`kms_sequential`] takes a latch-bearing [`BlifCircuit`] (whose network
//! already exposes latch outputs as pseudo primary inputs and latch inputs
//! as pseudo primary outputs, as produced by [`kms_blif::parse_blif`]),
//! runs the KMS algorithm on the combinational portion, and returns the
//! transformed circuit with the same latch boundary — ready to be written
//! back as a sequential BLIF model.

use kms_blif::BlifCircuit;
use kms_core::{kms, KmsOptions, KmsReport};
use kms_netlist::{transform, DelayModel, NetlistError};
use kms_timing::InputArrivals;

/// Runs KMS on the combinational portion of a sequential circuit.
///
/// The network is lowered to simple gates and re-timed with `model` first.
/// Latch boundary signals (pseudo PIs/POs) are preserved by construction:
/// the KMS transforms never remove primary inputs or outputs.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the KMS algorithm.
///
/// ```
/// use kms::sequential::kms_sequential;
/// use kms::netlist::DelayModel;
///
/// let text = "\
/// .model fsm
/// .inputs d
/// .outputs out
/// .latch next q 0
/// .names q d t
/// 11 1
/// .names q t next
/// 1- 1
/// -1 1
/// .names next out
/// 1 1
/// .end
/// ";
/// let circuit = kms::blif::parse_blif(text)?;
/// let (fixed, report) = kms_sequential(circuit, DelayModel::Unit, Default::default())?;
/// assert!(!report.removed_redundancies.is_empty());
/// assert_eq!(fixed.latches.len(), 1); // the latch boundary survives
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn kms_sequential(
    mut circuit: BlifCircuit,
    model: DelayModel,
    options: KmsOptions,
) -> Result<(BlifCircuit, KmsReport), NetlistError> {
    transform::decompose_to_simple(&mut circuit.network);
    circuit.network.apply_delay_model(model);
    // Cycle time is measured latch-to-latch: all pseudo inputs arrive
    // together at t = 0 (a clocked boundary).
    let arrivals = InputArrivals::zero();
    let report = kms(&mut circuit.network, &arrivals, options)?;
    Ok((circuit, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kms_atpg::{analyze, Engine};
    use kms_blif::{parse_blif, write_blif};
    use kms_sat::check_equivalence;

    const FSM: &str = "\
.model counter
.inputs en
.outputs odd
.latch n0 q0 0
.latch n1 q1 0
.names en q0 n0
01 1
10 1
.names en q0 q1 carry
111 1
.names carry q1 n1
01 1
10 1
.names q0 redundant
1 1
.names q0 redundant odd
11 1
.end
";

    #[test]
    fn sequential_wrapper_preserves_latch_boundary() {
        let circuit = parse_blif(FSM).unwrap();
        let before = circuit.network.clone();
        let n_latches = circuit.latches.len();
        let (fixed, _report) =
            kms_sequential(circuit, DelayModel::Unit, KmsOptions::default()).unwrap();
        assert_eq!(fixed.latches.len(), n_latches);
        // Same combinational interface (latch signals intact).
        assert_eq!(
            fixed.network.inputs().len(),
            before.inputs().len(),
            "pseudo inputs preserved"
        );
        assert_eq!(fixed.network.outputs().len(), before.outputs().len());
        // The combinational portion is equivalent and irredundant.
        let mut reference = before.clone();
        kms_netlist::transform::decompose_to_simple(&mut reference);
        assert!(check_equivalence(&reference, &fixed.network).is_equivalent());
        assert!(analyze(&fixed.network, Engine::Sat).fully_testable());
        // And it round-trips through BLIF.
        let text = write_blif(&fixed.network);
        let back = parse_blif(&text).unwrap();
        fixed.network.exhaustive_equiv(&back.network).unwrap();
    }
}
