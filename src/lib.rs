//! Facade crate for the KMS reproduction: re-exports every subsystem.
//!
//! See the README for the project layout. The primary entry point is
//! [`core`] (the KMS algorithm); the substrates are re-exported under
//! their own names.
//!
//! ```
//! use kms::gen::adders::carry_skip_adder;
//! use kms::netlist::DelayModel;
//! let csa = carry_skip_adder(4, 2, DelayModel::Unit);
//! assert_eq!(csa.outputs().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sequential;

pub use kms_analysis as analysis;
pub use kms_atpg as atpg;
pub use kms_bdd as bdd;
pub use kms_blif as blif;
pub use kms_core as core;
pub use kms_dataflow as dataflow;
pub use kms_gen as gen;
pub use kms_lint as lint;
pub use kms_netlist as netlist;
pub use kms_opt as opt;
pub use kms_proof as proof;
pub use kms_sat as sat;
pub use kms_timing as timing;
pub use kms_twolevel as twolevel;
